//! Versioned binary snapshots of a fitted [`L2r`] model.
//!
//! The paper's premise (Section VII-C) is that the offline cost is paid
//! *once*; this module is the seam that makes that true across processes:
//! [`save_model`] persists everything a fitted model owns — the road
//! network, the region graph with its T/B-edge classification and attached
//! paths, learned and transferred preference vectors, transfer centers,
//! configuration and offline statistics — into a single file, and
//! [`load_model`] brings it back with **bit-identical** serving behaviour
//! (a [`crate::Engine`] built from a loaded model answers exactly
//! like one built from the original; the vertex-grid sweeps in
//! `tests/snapshot_equivalence.rs` enforce it the same way prepared-vs-free
//! equivalence is enforced, and `crates/core/tests/snapshot_robustness.rs`
//! covers the malformed-file surface).
//!
//! # File format
//!
//! Everything is little-endian (see [`l2r_road_network::codec`]):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"L2RSNAP\0"
//!      8     1  format version (currently 2)
//!      9     8  payload length in bytes (u64)
//!     17     4  CRC-32 (IEEE) of the payload (u32)
//!     21     n  payload: dataset name, network, region graph, learned
//!               preferences, transferred preferences, config, offline
//!               stats, canary probes
//! ```
//!
//! Version 2 stamps two pieces of provenance into the (checksummed)
//! payload: the **dataset name** the model was fitted on — so a `reload`
//! can refuse to swap dataset A's engine in under name B — and a set of
//! **canary probes**: deterministic route queries whose answer digests are
//! recorded at save time ([`compute_canaries`]) and replayed against the
//! freshly compiled engine before a hot-swap commits
//! ([`crate::ModelRegistry`]'s validation stage).
//!
//! Loading performs a single file read, decodes into preallocated vectors
//! (the fixed-stride network tables decode in parallel chunks across
//! `L2R_THREADS` workers, bit-identically to a serial decode), and
//! validates every embedded id against the counts stored in the same
//! payload — a corrupt or truncated file produces a [`SnapshotError`],
//! never a panic.  Encoding is deterministic (hash maps are written in
//! sorted key order and canaries are derived from a fixed probe schedule),
//! so `encode → decode → encode` reproduces the exact bytes; the tests
//! lean on that for cheap whole-model equality.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use l2r_preference::{LearnedPreference, Preference};
use l2r_region_graph::{decode_region_graph, RegionEdgeId, RegionGraph};
use l2r_road_network::{
    decode_network_parallel, CodecError, Decode, Encode, Reader, VertexId, Writer,
};

use crate::config::L2rConfig;
use crate::pipeline::{L2r, OfflineStats};
use crate::router::RouteResult;

/// Magic bytes identifying an L2R snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"L2RSNAP\0";

/// Current snapshot format version.  Bumped on any wire-format change;
/// loaders reject versions they do not know.  Version 2 added the dataset
/// name and canary probes to the payload.
pub const SNAPSHOT_VERSION: u8 = 2;

/// Size of the fixed header preceding the payload.
const HEADER_LEN: usize = 8 + 1 + 8 + 4;

/// Longest dataset name a snapshot may carry.
pub const MAX_DATASET_NAME: usize = 256;

/// Most canary probes a snapshot may carry.
pub const MAX_CANARIES: usize = 4096;

/// Canary probes recorded by default at save time.
pub const DEFAULT_CANARY_COUNT: usize = 16;

/// An error raised while saving or loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.  Carries the
    /// offending path so operator-facing reload/rollback messages say
    /// *which* file failed.
    Io {
        /// The file the operation failed on.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file was written by a newer (or unknown) format version.
    UnsupportedVersion(u8),
    /// The file has the snapshot magic but ends inside the fixed header.
    TruncatedHeader {
        /// Total file length in bytes (less than the header size).
        len: u64,
    },
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present after the header.
        actual: u64,
    },
    /// The file is longer than its header claims.
    TrailingBytes(u64),
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// The payload failed structural validation.
    Codec(CodecError),
}

impl SnapshotError {
    /// Wraps an I/O failure with the path it happened on.
    pub fn io(path: &Path, source: std::io::Error) -> SnapshotError {
        SnapshotError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot I/O error at `{}`: {source}", path.display())
            }
            SnapshotError::BadMagic => write!(f, "not an L2R snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads up to {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::TruncatedHeader { len } => {
                write!(
                    f,
                    "snapshot truncated inside the {HEADER_LEN}-byte header ({len} bytes total)"
                )
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "snapshot truncated: payload {actual} of {expected} bytes"
                )
            }
            SnapshotError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} trailing bytes after the payload")
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header {expected:#010x}, payload {actual:#010x}"
            ),
            SnapshotError::Codec(e) => write!(f, "snapshot payload invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            SnapshotError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) of `data`; table built once per process.
/// Shared with the model store's `MANIFEST` codec.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Canary probes
// ---------------------------------------------------------------------------

/// One canary probe: a route query and the digest of its answer, recorded
/// at save time and replayed before a hot-swap commits.  A digest mismatch
/// means the snapshot's model does not answer like the model that was
/// saved — the swap is rejected and the old engine keeps serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canary {
    /// Probe source vertex.
    pub src: VertexId,
    /// Probe destination vertex.
    pub dst: VertexId,
    /// [`route_digest`] of the model's answer at save time.
    pub digest: u64,
}

/// A decoded snapshot: the fitted model plus its provenance metadata.
#[derive(Debug)]
pub struct Snapshot {
    /// The dataset name stamped at save time (empty for unnamed saves).
    pub dataset: String,
    /// Canary probes recorded at save time.
    pub canaries: Vec<Canary>,
    /// The fitted model itself.
    pub model: L2r,
}

/// The finalization step of splitmix64 — a cheap, well-mixed hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-sensitive digest of one route answer: folds the strategy label
/// and every path vertex through splitmix64.  `None` (no route) has its
/// own fixed digest.  Deterministic across processes and platforms — the
/// same answer always digests the same.
pub fn route_digest(result: &Option<RouteResult>) -> u64 {
    let Some(r) = result else {
        return 0x4E4F_524F_5554_4531; // fixed "NOROUTE" sentinel
    };
    let mut h = 0xD16E_5715_0CA4_A21Eu64;
    for &b in r.strategy.label().as_bytes() {
        h = splitmix64(h ^ b as u64);
    }
    let vertices = r.path.vertices();
    h = splitmix64(h ^ vertices.len() as u64);
    for v in vertices {
        h = splitmix64(h ^ v.0 as u64);
    }
    h
}

/// Computes `count` canary probes for `model`: a deterministic schedule of
/// source/destination pairs (seeded only by the network's shape, so
/// `encode → decode → encode` reproduces the exact probes) routed through
/// the *free* (uncompiled) router — which the engine-equivalence invariant
/// guarantees answers bit-identically to a compiled [`crate::Engine`].
pub fn compute_canaries(model: &L2r, count: usize) -> Vec<Canary> {
    let n = model.network().num_vertices() as u64;
    if n < 2 || count == 0 {
        return Vec::new();
    }
    let seed = 0x5EED_CAFE_D15C_0B01u64 ^ (n << 20) ^ model.network().num_edges() as u64;
    let mut canaries = Vec::with_capacity(count);
    for i in 0..count as u64 {
        let src = VertexId((splitmix64(seed ^ (2 * i)) % n) as u32);
        let mut dst = VertexId((splitmix64(seed ^ (2 * i + 1)) % n) as u32);
        if dst == src {
            dst = VertexId(((dst.0 as u64 + 1) % n) as u32);
        }
        let digest = route_digest(&model.route(src, dst));
        canaries.push(Canary { src, dst, digest });
    }
    canaries
}

fn encode_duration(w: &mut Writer, d: std::time::Duration) {
    // Nanosecond resolution in a u64 covers ~584 years of offline time.
    w.u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

fn decode_duration(
    r: &mut Reader<'_>,
    what: &'static str,
) -> Result<std::time::Duration, CodecError> {
    Ok(std::time::Duration::from_nanos(r.u64(what)?))
}

fn encode_stats(w: &mut Writer, s: &OfflineStats) {
    encode_duration(w, s.clustering_time);
    encode_duration(w, s.region_graph_time);
    encode_duration(w, s.learning_time);
    encode_duration(w, s.transfer_time);
    encode_duration(w, s.apply_time);
    w.length(s.num_regions);
    w.length(s.num_t_edges);
    w.length(s.num_b_edges);
    w.f64(s.null_rate);
    w.length(s.apply.edges_with_paths);
    w.length(s.apply.edges_without_paths);
    w.length(s.apply.total_paths);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<OfflineStats, CodecError> {
    Ok(OfflineStats {
        clustering_time: decode_duration(r, "clustering time")?,
        region_graph_time: decode_duration(r, "region graph time")?,
        learning_time: decode_duration(r, "learning time")?,
        transfer_time: decode_duration(r, "transfer time")?,
        apply_time: decode_duration(r, "apply time")?,
        num_regions: r.u64("num regions")? as usize,
        num_t_edges: r.u64("num t-edges")? as usize,
        num_b_edges: r.u64("num b-edges")? as usize,
        null_rate: r.f64("null rate")?,
        apply: crate::apply::ApplyStats {
            edges_with_paths: r.u64("edges with paths")? as usize,
            edges_without_paths: r.u64("edges without paths")? as usize,
            total_paths: r.u64("total paths")? as usize,
        },
    })
}

/// Encodes the model payload (header not included).  Hash-map entries are
/// written in ascending edge-id order, making the byte stream deterministic.
fn encode_payload(model: &L2r, dataset: &str, canaries: &[Canary]) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(dataset);
    model.network().encode(&mut w);
    model.region_graph().encode(&mut w);

    let mut learned: Vec<(&RegionEdgeId, &LearnedPreference)> =
        model.learned_preferences().iter().collect();
    learned.sort_by_key(|(id, _)| **id);
    w.length(learned.len());
    // l2r: allow(nondeterministic-iteration) — the Vec sorted above, not the map
    for (id, lp) in learned {
        w.u32(id.0);
        lp.encode(&mut w);
    }

    let mut transferred: Vec<(&RegionEdgeId, &Option<Preference>)> =
        model.transferred_preferences().iter().collect();
    transferred.sort_by_key(|(id, _)| **id);
    w.length(transferred.len());
    // l2r: allow(nondeterministic-iteration) — the Vec sorted above, not the map
    for (id, pref) in transferred {
        w.u32(id.0);
        match pref {
            Some(p) => {
                w.bool(true);
                p.encode(&mut w);
            }
            None => w.bool(false),
        }
    }

    let config = model.config();
    config.learn.encode(&mut w);
    config.transfer.encode(&mut w);
    w.length(config.function_top_k);
    w.length(config.max_transfer_center_pairs);

    encode_stats(&mut w, model.stats());

    w.length(canaries.len());
    for c in canaries {
        w.u32(c.src.0);
        w.u32(c.dst.0);
        w.u64(c.digest);
    }
    w.into_vec()
}

fn decode_payload(payload: &[u8]) -> Result<Snapshot, SnapshotError> {
    let mut r = Reader::new(payload);
    let dataset = r.str("dataset name", MAX_DATASET_NAME)?.to_string();
    // The network tables dominate the payload at country scale; their
    // fixed-stride wire format lets the decode fan out across `L2R_THREADS`
    // workers with bit-identical results (and identical errors — truncated
    // tables fall back to the serial decoder).
    let net = decode_network_parallel(&mut r)?;
    let region_graph: RegionGraph = decode_region_graph(&mut r, &net)?;
    let num_edges = region_graph.num_edges();

    let learned_len = r.length("learned preference count", 14)?;
    let mut learned: HashMap<RegionEdgeId, LearnedPreference> = HashMap::with_capacity(learned_len);
    for _ in 0..learned_len {
        let id = RegionEdgeId(r.index("learned edge id", num_edges)?);
        let lp = LearnedPreference::decode(&mut r)?;
        if learned.insert(id, lp).is_some() {
            return Err(CodecError::Invalid("duplicate learned edge id").into());
        }
    }

    let transferred_len = r.length("transferred preference count", 5)?;
    let mut transferred: HashMap<RegionEdgeId, Option<Preference>> =
        HashMap::with_capacity(transferred_len);
    for _ in 0..transferred_len {
        let id = RegionEdgeId(r.index("transferred edge id", num_edges)?);
        let pref = if r.bool("transferred preference flag")? {
            Some(Preference::decode(&mut r)?)
        } else {
            None
        };
        if transferred.insert(id, pref).is_some() {
            return Err(CodecError::Invalid("duplicate transferred edge id").into());
        }
    }

    let learn = l2r_preference::LearnConfig::decode(&mut r)?;
    let transfer = l2r_preference::TransferConfig::decode(&mut r)?;
    let function_top_k = r.u64("function top k")? as usize;
    let max_transfer_center_pairs = r.u64("max transfer center pairs")? as usize;
    let config = L2rConfig {
        learn,
        transfer,
        function_top_k,
        max_transfer_center_pairs,
    };

    let stats = decode_stats(&mut r)?;

    let canary_len = r.length("canary count", 16)?;
    if canary_len > MAX_CANARIES {
        return Err(CodecError::ImplausibleLength {
            what: "canary count",
            len: canary_len as u64,
        }
        .into());
    }
    let num_vertices = net.num_vertices() as u32;
    let mut canaries = Vec::with_capacity(canary_len);
    for _ in 0..canary_len {
        let src = r.u32("canary source")?;
        let dst = r.u32("canary destination")?;
        if src >= num_vertices || dst >= num_vertices {
            return Err(CodecError::Invalid("canary vertex id out of range").into());
        }
        canaries.push(Canary {
            src: VertexId(src),
            dst: VertexId(dst),
            digest: r.u64("canary digest")?,
        });
    }

    if !r.is_exhausted() {
        return Err(SnapshotError::TrailingBytes(r.remaining() as u64));
    }
    Ok(Snapshot {
        dataset,
        canaries,
        model: L2r::from_parts(net, region_graph, learned, transferred, config, stats),
    })
}

/// Serialises a fitted model into the framed snapshot byte stream
/// (header + checksummed payload), stamping `dataset` and recording
/// [`DEFAULT_CANARY_COUNT`] canary probes.  Deterministic: the same model
/// and name always produce the same bytes.
pub fn encode_snapshot(model: &L2r, dataset: &str) -> Vec<u8> {
    encode_snapshot_with(
        model,
        dataset,
        &compute_canaries(model, DEFAULT_CANARY_COUNT),
    )
}

/// Serialises a fitted model with explicit canary probes (tests and chaos
/// drills craft deliberately wrong ones to prove validation rejects them).
pub fn encode_snapshot_with(model: &L2r, dataset: &str, canaries: &[Canary]) -> Vec<u8> {
    let payload = encode_payload(model, dataset, canaries);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Serialises a fitted model without a dataset stamp (the name is empty:
/// such snapshots reload under any name).
pub fn encode_model(model: &L2r) -> Vec<u8> {
    encode_snapshot(model, "")
}

/// Serialises a fitted model with its wall-clock stage durations zeroed.
///
/// Snapshots carry the fit's per-stage timings as provenance, so two fits of
/// the same data never encode identically through [`encode_model`] even when
/// the learned model is the same.  This variant strips exactly that timing
/// provenance (the structural stats — counts, null rate, apply statistics —
/// are kept), making the bytes comparable across fits: it is what the
/// cross-thread determinism check of the reproduce harness diffs.
pub fn encode_model_structural(model: &L2r) -> Vec<u8> {
    let stats = OfflineStats {
        clustering_time: std::time::Duration::ZERO,
        region_graph_time: std::time::Duration::ZERO,
        learning_time: std::time::Duration::ZERO,
        transfer_time: std::time::Duration::ZERO,
        apply_time: std::time::Duration::ZERO,
        ..model.stats().clone()
    };
    let stripped = L2r::from_parts(
        model.network().clone(),
        model.region_graph().clone(),
        model.learned_preferences().clone(),
        model.transferred_preferences().clone(),
        model.config().clone(),
        stats,
    );
    encode_model(&stripped)
}

/// Validates the snapshot framing — magic, version, header, length and
/// payload checksum — without decoding the payload.  This is what the
/// model store runs over artifacts before trusting them (a bit flip
/// anywhere in the file fails here), at a fraction of a full decode.
pub fn verify_frame(bytes: &[u8]) -> Result<(), SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() || bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::TruncatedHeader {
            len: bytes.len() as u64,
        });
    }
    let version = bytes[8];
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[9..17].try_into().expect("8-byte slice"));
    let stored_crc = u32::from_le_bytes(bytes[17..21].try_into().expect("4-byte slice"));
    let payload = &bytes[HEADER_LEN..];
    if (payload.len() as u64) < payload_len {
        return Err(SnapshotError::Truncated {
            expected: payload_len,
            actual: payload.len() as u64,
        });
    }
    if (payload.len() as u64) > payload_len {
        return Err(SnapshotError::TrailingBytes(
            payload.len() as u64 - payload_len,
        ));
    }
    let actual_crc = crc32(payload);
    if actual_crc != stored_crc {
        return Err(SnapshotError::ChecksumMismatch {
            expected: stored_crc,
            actual: actual_crc,
        });
    }
    Ok(())
}

/// Decodes a framed snapshot byte stream — model plus provenance metadata —
/// validating the magic, version, length, checksum and every embedded id.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    verify_frame(bytes)?;
    decode_payload(&bytes[HEADER_LEN..])
}

/// Decodes a framed snapshot byte stream back into a fitted model,
/// discarding the provenance metadata.
pub fn decode_model(bytes: &[u8]) -> Result<L2r, SnapshotError> {
    decode_snapshot(bytes).map(|s| s.model)
}

/// Writes a fitted model to `path` with a `dataset` stamp, returning the
/// snapshot size in bytes.
pub fn save_snapshot(model: &L2r, dataset: &str, path: &Path) -> Result<u64, SnapshotError> {
    let bytes = encode_snapshot(model, dataset);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| SnapshotError::io(parent, e))?;
        }
    }
    std::fs::write(path, &bytes).map_err(|e| SnapshotError::io(path, e))?;
    Ok(bytes.len() as u64)
}

/// Writes a fitted model to `path` without a dataset stamp, returning the
/// snapshot size in bytes.
pub fn save_model(model: &L2r, path: &Path) -> Result<u64, SnapshotError> {
    save_snapshot(model, "", path)
}

/// Reads a snapshot — model plus provenance metadata — from `path` in a
/// single read.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    decode_snapshot(&bytes)
}

/// Reads a fitted model from `path` in a single read.
pub fn load_model(path: &Path) -> Result<L2r, SnapshotError> {
    load_snapshot(path).map(|s| s.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_road_network::RoadNetworkBuilder;

    fn fitted() -> L2r {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let (train, _) = wl.temporal_split(0.8);
        L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap()
    }

    #[test]
    fn encode_decode_encode_is_bit_stable() {
        let model = fitted();
        let bytes = encode_model(&model);
        let loaded = decode_model(&bytes).unwrap();
        assert_eq!(encode_model(&loaded), bytes);
    }

    #[test]
    fn loaded_model_preserves_all_parts() {
        let model = fitted();
        let loaded = decode_model(&encode_model(&model)).unwrap();
        assert_eq!(
            loaded.network().num_vertices(),
            model.network().num_vertices()
        );
        assert_eq!(
            loaded.region_graph().num_edges(),
            model.region_graph().num_edges()
        );
        assert_eq!(loaded.learned_preferences(), model.learned_preferences());
        assert_eq!(
            loaded.transferred_preferences(),
            model.transferred_preferences()
        );
        assert_eq!(loaded.stats().num_regions, model.stats().num_regions);
        assert_eq!(
            loaded.stats().learning_time.as_nanos(),
            model.stats().learning_time.as_nanos()
        );
        assert_eq!(
            loaded.config().function_top_k,
            model.config().function_top_k
        );
    }

    #[test]
    fn empty_model_roundtrips() {
        // Zero regions cannot come out of `fit` (it errors), but the format
        // must still round-trip the degenerate model.
        let net = RoadNetworkBuilder::new().build();
        let rg = RegionGraph::build(&net, &[], &[], 2);
        let model = L2r::from_parts(
            net,
            rg,
            HashMap::new(),
            HashMap::new(),
            L2rConfig::default(),
            OfflineStats::default(),
        );
        let bytes = encode_model(&model);
        let loaded = decode_model(&bytes).unwrap();
        assert_eq!(loaded.region_graph().num_regions(), 0);
        assert!(loaded.learned_preferences().is_empty());
        assert_eq!(encode_model(&loaded), bytes);
    }

    #[test]
    fn out_of_range_preference_edge_ids_error() {
        let model = fitted();
        let num_edges = model.region_graph().num_edges() as u32;

        let mut learned = model.learned_preferences().clone();
        let any = *learned.values().next().unwrap();
        learned.insert(RegionEdgeId(num_edges + 40), any);
        let bad = L2r::from_parts(
            model.network().clone(),
            model.region_graph().clone(),
            learned,
            model.transferred_preferences().clone(),
            model.config().clone(),
            model.stats().clone(),
        );
        assert!(matches!(
            decode_model(&encode_model(&bad)),
            Err(SnapshotError::Codec(CodecError::IndexOutOfRange { .. }))
        ));

        let mut transferred = model.transferred_preferences().clone();
        transferred.insert(RegionEdgeId(num_edges), None);
        let bad = L2r::from_parts(
            model.network().clone(),
            model.region_graph().clone(),
            model.learned_preferences().clone(),
            transferred,
            model.config().clone(),
            model.stats().clone(),
        );
        assert!(matches!(
            decode_model(&encode_model(&bad)),
            Err(SnapshotError::Codec(CodecError::IndexOutOfRange { .. }))
        ));
    }

    #[test]
    fn named_snapshot_roundtrips_dataset_and_canaries() {
        let model = fitted();
        let bytes = encode_snapshot(&model, "chengdu");
        let snap = decode_snapshot(&bytes).unwrap();
        assert_eq!(snap.dataset, "chengdu");
        assert_eq!(snap.canaries.len(), DEFAULT_CANARY_COUNT);
        // Replaying every canary against the decoded model reproduces the
        // recorded digests — the property registry validation relies on.
        for c in &snap.canaries {
            assert_eq!(route_digest(&snap.model.route(c.src, c.dst)), c.digest);
        }
        // Determinism: same model + name → same bytes.
        assert_eq!(encode_snapshot(&snap.model, "chengdu"), bytes);
    }

    #[test]
    fn out_of_range_canary_vertices_error() {
        let model = fitted();
        let n = model.network().num_vertices() as u32;
        let bad = [Canary {
            src: VertexId(n + 3),
            dst: VertexId(0),
            digest: 7,
        }];
        assert!(matches!(
            decode_snapshot(&encode_snapshot_with(&model, "x", &bad)),
            Err(SnapshotError::Codec(CodecError::Invalid(_)))
        ));
    }

    #[test]
    fn verify_frame_accepts_exactly_what_decode_accepts() {
        let model = fitted();
        let bytes = encode_snapshot(&model, "d");
        verify_frame(&bytes).unwrap();
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            verify_frame(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            verify_frame(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
