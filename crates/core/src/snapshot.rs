//! Versioned binary snapshots of a fitted [`L2r`] model.
//!
//! The paper's premise (Section VII-C) is that the offline cost is paid
//! *once*; this module is the seam that makes that true across processes:
//! [`save_model`] persists everything a fitted model owns — the road
//! network, the region graph with its T/B-edge classification and attached
//! paths, learned and transferred preference vectors, transfer centers,
//! configuration and offline statistics — into a single file, and
//! [`load_model`] brings it back with **bit-identical** serving behaviour
//! (a [`crate::Engine`] built from a loaded model answers exactly
//! like one built from the original; the vertex-grid sweeps in
//! `tests/snapshot_equivalence.rs` enforce it the same way prepared-vs-free
//! equivalence is enforced, and `crates/core/tests/snapshot_robustness.rs`
//! covers the malformed-file surface).
//!
//! # File format
//!
//! Everything is little-endian (see [`l2r_road_network::codec`]):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"L2RSNAP\0"
//!      8     1  format version (currently 1)
//!      9     8  payload length in bytes (u64)
//!     17     4  CRC-32 (IEEE) of the payload (u32)
//!     21     n  payload: network, region graph, learned preferences,
//!               transferred preferences, config, offline stats
//! ```
//!
//! Loading performs a single file read, decodes into preallocated vectors,
//! and validates every embedded id against the counts stored in the same
//! payload — a corrupt or truncated file produces a [`SnapshotError`],
//! never a panic.  Encoding is deterministic (hash maps are written in
//! sorted key order), so `encode → decode → encode` reproduces the exact
//! bytes; the tests lean on that for cheap whole-model equality.

use std::collections::HashMap;
use std::path::Path;

use l2r_preference::{LearnedPreference, Preference};
use l2r_region_graph::{decode_region_graph, RegionEdgeId, RegionGraph};
use l2r_road_network::{CodecError, Decode, Encode, Reader, RoadNetwork, Writer};

use crate::config::L2rConfig;
use crate::pipeline::{L2r, OfflineStats};

/// Magic bytes identifying an L2R snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"L2RSNAP\0";

/// Current snapshot format version.  Bumped on any wire-format change;
/// loaders reject versions they do not know.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Size of the fixed header preceding the payload.
const HEADER_LEN: usize = 8 + 1 + 8 + 4;

/// An error raised while saving or loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file was written by a newer (or unknown) format version.
    UnsupportedVersion(u8),
    /// The file has the snapshot magic but ends inside the fixed header.
    TruncatedHeader {
        /// Total file length in bytes (less than the header size).
        len: u64,
    },
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present after the header.
        actual: u64,
    },
    /// The file is longer than its header claims.
    TrailingBytes(u64),
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// The payload failed structural validation.
    Codec(CodecError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not an L2R snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads up to {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::TruncatedHeader { len } => {
                write!(
                    f,
                    "snapshot truncated inside the {HEADER_LEN}-byte header ({len} bytes total)"
                )
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "snapshot truncated: payload {actual} of {expected} bytes"
                )
            }
            SnapshotError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} trailing bytes after the payload")
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header {expected:#010x}, payload {actual:#010x}"
            ),
            SnapshotError::Codec(e) => write!(f, "snapshot payload invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) of `data`; table built once per process.
fn crc32(data: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn encode_duration(w: &mut Writer, d: std::time::Duration) {
    // Nanosecond resolution in a u64 covers ~584 years of offline time.
    w.u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

fn decode_duration(
    r: &mut Reader<'_>,
    what: &'static str,
) -> Result<std::time::Duration, CodecError> {
    Ok(std::time::Duration::from_nanos(r.u64(what)?))
}

fn encode_stats(w: &mut Writer, s: &OfflineStats) {
    encode_duration(w, s.clustering_time);
    encode_duration(w, s.region_graph_time);
    encode_duration(w, s.learning_time);
    encode_duration(w, s.transfer_time);
    encode_duration(w, s.apply_time);
    w.length(s.num_regions);
    w.length(s.num_t_edges);
    w.length(s.num_b_edges);
    w.f64(s.null_rate);
    w.length(s.apply.edges_with_paths);
    w.length(s.apply.edges_without_paths);
    w.length(s.apply.total_paths);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<OfflineStats, CodecError> {
    Ok(OfflineStats {
        clustering_time: decode_duration(r, "clustering time")?,
        region_graph_time: decode_duration(r, "region graph time")?,
        learning_time: decode_duration(r, "learning time")?,
        transfer_time: decode_duration(r, "transfer time")?,
        apply_time: decode_duration(r, "apply time")?,
        num_regions: r.u64("num regions")? as usize,
        num_t_edges: r.u64("num t-edges")? as usize,
        num_b_edges: r.u64("num b-edges")? as usize,
        null_rate: r.f64("null rate")?,
        apply: crate::apply::ApplyStats {
            edges_with_paths: r.u64("edges with paths")? as usize,
            edges_without_paths: r.u64("edges without paths")? as usize,
            total_paths: r.u64("total paths")? as usize,
        },
    })
}

/// Encodes the model payload (header not included).  Hash-map entries are
/// written in ascending edge-id order, making the byte stream deterministic.
fn encode_payload(model: &L2r) -> Vec<u8> {
    let mut w = Writer::new();
    model.network().encode(&mut w);
    model.region_graph().encode(&mut w);

    let mut learned: Vec<(&RegionEdgeId, &LearnedPreference)> =
        model.learned_preferences().iter().collect();
    learned.sort_by_key(|(id, _)| **id);
    w.length(learned.len());
    for (id, lp) in learned {
        w.u32(id.0);
        lp.encode(&mut w);
    }

    let mut transferred: Vec<(&RegionEdgeId, &Option<Preference>)> =
        model.transferred_preferences().iter().collect();
    transferred.sort_by_key(|(id, _)| **id);
    w.length(transferred.len());
    for (id, pref) in transferred {
        w.u32(id.0);
        match pref {
            Some(p) => {
                w.bool(true);
                p.encode(&mut w);
            }
            None => w.bool(false),
        }
    }

    let config = model.config();
    config.learn.encode(&mut w);
    config.transfer.encode(&mut w);
    w.length(config.function_top_k);
    w.length(config.max_transfer_center_pairs);

    encode_stats(&mut w, model.stats());
    w.into_vec()
}

fn decode_payload(payload: &[u8]) -> Result<L2r, SnapshotError> {
    let mut r = Reader::new(payload);
    let net = RoadNetwork::decode(&mut r)?;
    let region_graph: RegionGraph = decode_region_graph(&mut r, &net)?;
    let num_edges = region_graph.num_edges();

    let learned_len = r.length("learned preference count", 14)?;
    let mut learned: HashMap<RegionEdgeId, LearnedPreference> = HashMap::with_capacity(learned_len);
    for _ in 0..learned_len {
        let id = RegionEdgeId(r.index("learned edge id", num_edges)?);
        let lp = LearnedPreference::decode(&mut r)?;
        if learned.insert(id, lp).is_some() {
            return Err(CodecError::Invalid("duplicate learned edge id").into());
        }
    }

    let transferred_len = r.length("transferred preference count", 5)?;
    let mut transferred: HashMap<RegionEdgeId, Option<Preference>> =
        HashMap::with_capacity(transferred_len);
    for _ in 0..transferred_len {
        let id = RegionEdgeId(r.index("transferred edge id", num_edges)?);
        let pref = if r.bool("transferred preference flag")? {
            Some(Preference::decode(&mut r)?)
        } else {
            None
        };
        if transferred.insert(id, pref).is_some() {
            return Err(CodecError::Invalid("duplicate transferred edge id").into());
        }
    }

    let learn = l2r_preference::LearnConfig::decode(&mut r)?;
    let transfer = l2r_preference::TransferConfig::decode(&mut r)?;
    let function_top_k = r.u64("function top k")? as usize;
    let max_transfer_center_pairs = r.u64("max transfer center pairs")? as usize;
    let config = L2rConfig {
        learn,
        transfer,
        function_top_k,
        max_transfer_center_pairs,
    };

    let stats = decode_stats(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapshotError::TrailingBytes(r.remaining() as u64));
    }
    Ok(L2r::from_parts(
        net,
        region_graph,
        learned,
        transferred,
        config,
        stats,
    ))
}

/// Serialises a fitted model into the framed snapshot byte stream
/// (header + checksummed payload).  Deterministic: the same model always
/// produces the same bytes.
pub fn encode_model(model: &L2r) -> Vec<u8> {
    let payload = encode_payload(model);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a framed snapshot byte stream back into a fitted model,
/// validating the magic, version, length, checksum and every embedded id.
pub fn decode_model(bytes: &[u8]) -> Result<L2r, SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() || bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::TruncatedHeader {
            len: bytes.len() as u64,
        });
    }
    let version = bytes[8];
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[9..17].try_into().expect("8-byte slice"));
    let stored_crc = u32::from_le_bytes(bytes[17..21].try_into().expect("4-byte slice"));
    let payload = &bytes[HEADER_LEN..];
    if (payload.len() as u64) < payload_len {
        return Err(SnapshotError::Truncated {
            expected: payload_len,
            actual: payload.len() as u64,
        });
    }
    if (payload.len() as u64) > payload_len {
        return Err(SnapshotError::TrailingBytes(
            payload.len() as u64 - payload_len,
        ));
    }
    let actual_crc = crc32(payload);
    if actual_crc != stored_crc {
        return Err(SnapshotError::ChecksumMismatch {
            expected: stored_crc,
            actual: actual_crc,
        });
    }
    decode_payload(payload)
}

/// Writes a fitted model to `path`, returning the snapshot size in bytes.
pub fn save_model(model: &L2r, path: &Path) -> Result<u64, SnapshotError> {
    let bytes = encode_model(model);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Reads a fitted model from `path` in a single read.
pub fn load_model(path: &Path) -> Result<L2r, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode_model(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_road_network::RoadNetworkBuilder;

    fn fitted() -> L2r {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let (train, _) = wl.temporal_split(0.8);
        L2r::fit(&syn.net, &train, L2rConfig::fast()).unwrap()
    }

    #[test]
    fn encode_decode_encode_is_bit_stable() {
        let model = fitted();
        let bytes = encode_model(&model);
        let loaded = decode_model(&bytes).unwrap();
        assert_eq!(encode_model(&loaded), bytes);
    }

    #[test]
    fn loaded_model_preserves_all_parts() {
        let model = fitted();
        let loaded = decode_model(&encode_model(&model)).unwrap();
        assert_eq!(
            loaded.network().num_vertices(),
            model.network().num_vertices()
        );
        assert_eq!(
            loaded.region_graph().num_edges(),
            model.region_graph().num_edges()
        );
        assert_eq!(loaded.learned_preferences(), model.learned_preferences());
        assert_eq!(
            loaded.transferred_preferences(),
            model.transferred_preferences()
        );
        assert_eq!(loaded.stats().num_regions, model.stats().num_regions);
        assert_eq!(
            loaded.stats().learning_time.as_nanos(),
            model.stats().learning_time.as_nanos()
        );
        assert_eq!(
            loaded.config().function_top_k,
            model.config().function_top_k
        );
    }

    #[test]
    fn empty_model_roundtrips() {
        // Zero regions cannot come out of `fit` (it errors), but the format
        // must still round-trip the degenerate model.
        let net = RoadNetworkBuilder::new().build();
        let rg = RegionGraph::build(&net, &[], &[], 2);
        let model = L2r::from_parts(
            net,
            rg,
            HashMap::new(),
            HashMap::new(),
            L2rConfig::default(),
            OfflineStats::default(),
        );
        let bytes = encode_model(&model);
        let loaded = decode_model(&bytes).unwrap();
        assert_eq!(loaded.region_graph().num_regions(), 0);
        assert!(loaded.learned_preferences().is_empty());
        assert_eq!(encode_model(&loaded), bytes);
    }

    #[test]
    fn out_of_range_preference_edge_ids_error() {
        let model = fitted();
        let num_edges = model.region_graph().num_edges() as u32;

        let mut learned = model.learned_preferences().clone();
        let any = *learned.values().next().unwrap();
        learned.insert(RegionEdgeId(num_edges + 40), any);
        let bad = L2r::from_parts(
            model.network().clone(),
            model.region_graph().clone(),
            learned,
            model.transferred_preferences().clone(),
            model.config().clone(),
            model.stats().clone(),
        );
        assert!(matches!(
            decode_model(&encode_model(&bad)),
            Err(SnapshotError::Codec(CodecError::IndexOutOfRange { .. }))
        ));

        let mut transferred = model.transferred_preferences().clone();
        transferred.insert(RegionEdgeId(num_edges), None);
        let bad = L2r::from_parts(
            model.network().clone(),
            model.region_graph().clone(),
            model.learned_preferences().clone(),
            transferred,
            model.config().clone(),
            model.stats().clone(),
        );
        assert!(matches!(
            decode_model(&encode_model(&bad)),
            Err(SnapshotError::Codec(CodecError::IndexOutOfRange { .. }))
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
