//! Property tests for the radius-bounded similarity-graph construction: on
//! arbitrary descriptor sets and thresholds, the early-terminating builder
//! must return exactly the rows of the naive O(n²) scan — bit-identical
//! similarity values included — so the transferred preference vectors can
//! never change when the bounded builder is used.

use std::collections::HashSet;

use proptest::prelude::*;

use l2r_preference::{build_similarity_rows, build_similarity_rows_naive, RegionEdgeDescriptor};
use l2r_road_network::RoadType;

const TYPES: [RoadType; 4] = [
    RoadType::Motorway,
    RoadType::Primary,
    RoadType::Tertiary,
    RoadType::Residential,
];

/// Builds a descriptor from a quantised distance and a 4-bit functionality
/// mask, normalising pairs exactly like `RegionEdgeDescriptor::build`.
fn descriptor(dis_m: f64, mask: u8) -> RegionEdgeDescriptor {
    let mut function_pairs = HashSet::new();
    for (i, &ta) in TYPES.iter().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        for (j, &tb) in TYPES.iter().enumerate().skip(i) {
            if mask & (1 << j) == 0 {
                continue;
            }
            let (a, b) = if ta.index() <= tb.index() {
                (ta, tb)
            } else {
                (tb, ta)
            };
            function_pairs.insert((a, b));
        }
    }
    RegionEdgeDescriptor {
        dis_m,
        function_pairs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Quantised distances force ties and zero distances; `amr` sweeps past
    /// both ends of the valid range (including the vacuous-bound regime
    /// below 0.5 and an unreachable threshold above 1).
    #[test]
    fn bounded_rows_equal_naive_rows_with_ties(
        raw in proptest::collection::vec((0u32..25, 0u8..16), 0..60),
        amr_pct in 0u32..111,
    ) {
        let descriptors: Vec<RegionEdgeDescriptor> = raw
            .iter()
            .map(|&(d, m)| descriptor(f64::from(d) * 713.0, m))
            .collect();
        let amr = f64::from(amr_pct) / 100.0;
        prop_assert_eq!(
            build_similarity_rows_naive(&descriptors, amr),
            build_similarity_rows(&descriptors, amr)
        );
    }

    /// Continuous distances (no ties) with thresholds around the paper's
    /// Figure 9(b) range.
    #[test]
    fn bounded_rows_equal_naive_rows_continuous(
        raw in proptest::collection::vec((0.0f64..80_000.0, 0u8..16), 0..60),
        amr in 0.45f64..1.0,
    ) {
        let descriptors: Vec<RegionEdgeDescriptor> = raw
            .iter()
            .map(|&(d, m)| descriptor(d, m))
            .collect();
        prop_assert_eq!(
            build_similarity_rows_naive(&descriptors, amr),
            build_similarity_rows(&descriptors, amr)
        );
    }
}
