//! The routing preference model (Section V-A of the paper).
//!
//! A routing preference is a two-dimensional vector: the *master* dimension
//! is a travel-cost feature (distance, travel time or fuel consumption) and
//! the *slave* dimension is a road-condition feature (a preferred set of road
//! types, or none).  For the transduction step preferences are embedded into
//! a feature vector with one column per travel-cost feature and one column
//! per road type.

use l2r_road_network::{CostType, RoadType, RoadTypeSet};

/// Number of feature columns used by the transfer step: one per cost type
/// followed by one per road type.
pub const NUM_FEATURES: usize = CostType::COUNT + RoadType::COUNT;

/// A routing preference `⟨master, slave⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Preference {
    /// The travel-cost feature to minimise.
    pub master: CostType,
    /// The preferred road types, if any.
    pub slave: Option<RoadTypeSet>,
}

impl Preference {
    /// A preference with no road-condition component.
    pub fn cost_only(master: CostType) -> Self {
        Preference {
            master,
            slave: None,
        }
    }

    /// A preference with a single preferred road type.
    pub fn with_road_type(master: CostType, rt: RoadType) -> Self {
        Preference {
            master,
            slave: Some(RoadTypeSet::single(rt)),
        }
    }

    /// Embeds the preference into the `NUM_FEATURES`-dimensional feature row
    /// used as training data by the transduction step (1.0 on active
    /// features, 0.0 elsewhere).
    pub fn to_feature_row(&self) -> [f64; NUM_FEATURES] {
        let mut row = [0.0; NUM_FEATURES];
        row[self.master.index()] = 1.0;
        if let Some(slave) = self.slave {
            for rt in slave.iter() {
                row[CostType::COUNT + rt.index()] = 1.0;
            }
        }
        row
    }

    /// Decodes a (possibly soft) feature row back into a preference.
    ///
    /// The master feature is the arg-max over the cost columns; the slave
    /// feature is the arg-max road-type column when it carries at least
    /// `slave_threshold` of probability mass, otherwise no slave.  Returns
    /// `None` when every cost column is (numerically) zero — the "null
    /// preference" case of Section VII-B.
    pub fn from_feature_row(row: &[f64], slave_threshold: f64) -> Option<Preference> {
        if row.len() < NUM_FEATURES {
            return None;
        }
        let mut best_cost = 0usize;
        let mut best_cost_val = f64::NEG_INFINITY;
        for (i, &val) in row.iter().enumerate().take(CostType::COUNT) {
            if val > best_cost_val {
                best_cost_val = val;
                best_cost = i;
            }
        }
        if best_cost_val <= 1e-9 {
            return None;
        }
        let master = CostType::from_index(best_cost)?;
        let mut best_rt: Option<RoadType> = None;
        let mut best_rt_val = f64::NEG_INFINITY;
        for i in 0..RoadType::COUNT {
            let v = row[CostType::COUNT + i];
            if v > best_rt_val {
                best_rt_val = v;
                best_rt = RoadType::from_index(i);
            }
        }
        let slave = match best_rt {
            Some(rt) if best_rt_val >= slave_threshold => Some(RoadTypeSet::single(rt)),
            _ => None,
        };
        Some(Preference { master, slave })
    }

    /// The set of active feature indices (used by the Jaccard accuracy
    /// measure of Figure 9).
    pub fn active_features(&self) -> Vec<usize> {
        let mut f = vec![self.master.index()];
        if let Some(slave) = self.slave {
            for rt in slave.iter() {
                f.push(CostType::COUNT + rt.index());
            }
        }
        f
    }

    /// Jaccard similarity between the active feature sets of two preferences
    /// (1.0 for identical preferences, 0.0 for disjoint ones).
    pub fn jaccard(&self, other: &Preference) -> f64 {
        let a: std::collections::HashSet<usize> = self.active_features().into_iter().collect();
        let b: std::collections::HashSet<usize> = other.active_features().into_iter().collect();
        let inter = a.intersection(&b).count();
        let union = a.union(&b).count();
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

impl std::fmt::Display for Preference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.slave {
            Some(s) if !s.is_empty() => write!(f, "⟨{}, {}⟩", self.master, s),
            _ => write!(f, "⟨{}, ∅⟩", self.master),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_row_roundtrip() {
        let p = Preference::with_road_type(CostType::TravelTime, RoadType::Motorway);
        let row = p.to_feature_row();
        assert_eq!(row.iter().filter(|v| **v > 0.0).count(), 2);
        let decoded = Preference::from_feature_row(&row, 0.5).unwrap();
        assert_eq!(decoded, p);

        let q = Preference::cost_only(CostType::Distance);
        let decoded = Preference::from_feature_row(&q.to_feature_row(), 0.5).unwrap();
        assert_eq!(decoded, q);
    }

    #[test]
    fn decoding_soft_rows() {
        let mut row = [0.0; NUM_FEATURES];
        row[CostType::Fuel.index()] = 0.7;
        row[CostType::Distance.index()] = 0.2;
        row[CostType::COUNT + RoadType::Trunk.index()] = 0.6;
        row[CostType::COUNT + RoadType::Primary.index()] = 0.1;
        let p = Preference::from_feature_row(&row, 0.3).unwrap();
        assert_eq!(p.master, CostType::Fuel);
        assert_eq!(p.slave, Some(RoadTypeSet::single(RoadType::Trunk)));
        // Below the slave threshold the road component is dropped.
        let p = Preference::from_feature_row(&row, 0.9).unwrap();
        assert_eq!(p.slave, None);
        // An all-zero row decodes to the null preference.
        assert_eq!(
            Preference::from_feature_row(&[0.0; NUM_FEATURES], 0.5),
            None
        );
        // A too-short row is rejected.
        assert_eq!(Preference::from_feature_row(&[1.0; 3], 0.5), None);
    }

    #[test]
    fn jaccard_similarity_between_preferences() {
        let a = Preference::with_road_type(CostType::TravelTime, RoadType::Motorway);
        let b = Preference::with_road_type(CostType::TravelTime, RoadType::Motorway);
        let c = Preference::with_road_type(CostType::TravelTime, RoadType::Primary);
        let d = Preference::cost_only(CostType::Distance);
        assert_eq!(a.jaccard(&b), 1.0);
        assert!((a.jaccard(&c) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.jaccard(&d), 0.0);
    }

    #[test]
    fn display_format() {
        let p = Preference::with_road_type(CostType::Distance, RoadType::Primary);
        assert_eq!(p.to_string(), "⟨DI, {primary}⟩");
        assert_eq!(Preference::cost_only(CostType::Fuel).to_string(), "⟨FC, ∅⟩");
    }
}
