//! Region-edge descriptors and the region-edge similarity function `reSim`
//! (Section V-B of the paper).
//!
//! A region edge is described by
//! * `dis` — the Euclidean distance between the centroids of the two regions
//!   it connects, and
//! * `F` — the Cartesian product of the two regions' top-k road-type sets
//!   (their "functionality").
//!
//! The similarity of two region edges is
//! `min(dis)/max(dis) + Jaccard(F_a, F_b)`, i.e. a value in `[0, 2]`.  The
//! adjacency-matrix threshold `amr` of the paper is expressed on the
//! normalised value (`reSim / 2 ∈ [0, 1]`), which matches the 0.5–0.9 range
//! explored in Figure 9(b).

use std::collections::HashSet;

use l2r_region_graph::{RegionEdge, RegionGraph};
use l2r_road_network::RoadType;

/// Descriptor of a region edge.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionEdgeDescriptor {
    /// Euclidean distance between the two region centroids, metres.
    pub dis_m: f64,
    /// Functionality: unordered set of road-type pairs (one from each
    /// region's top-k set).
    pub function_pairs: HashSet<(RoadType, RoadType)>,
}

impl RegionEdgeDescriptor {
    /// Builds the descriptor of `edge` within `rg`.
    pub fn build(rg: &RegionGraph, edge: &RegionEdge) -> Self {
        let ra = rg.region(edge.a);
        let rb = rg.region(edge.b);
        let dis_m = rg.region_distance_m(edge.a, edge.b);
        let mut function_pairs = HashSet::new();
        for ta in ra.function.iter() {
            for tb in rb.function.iter() {
                // Unordered pair: normalise so (x, y) == (y, x).
                let pair = if ta.index() <= tb.index() {
                    (ta, tb)
                } else {
                    (tb, ta)
                };
                function_pairs.insert(pair);
            }
        }
        RegionEdgeDescriptor {
            dis_m,
            function_pairs,
        }
    }

    /// Raw `reSim` in `[0, 2]`: distance-ratio similarity plus Jaccard of the
    /// functionality sets.
    pub fn similarity(&self, other: &RegionEdgeDescriptor) -> f64 {
        let (lo, hi) = if self.dis_m <= other.dis_m {
            (self.dis_m, other.dis_m)
        } else {
            (other.dis_m, self.dis_m)
        };
        let dist_sim = if hi <= 0.0 {
            1.0
        } else {
            (lo / hi).clamp(0.0, 1.0)
        };
        let inter = self
            .function_pairs
            .intersection(&other.function_pairs)
            .count();
        let union = self.function_pairs.union(&other.function_pairs).count();
        let func_sim = if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        };
        dist_sim + func_sim
    }

    /// Normalised similarity in `[0, 1]` (used with the `amr` threshold).
    pub fn normalized_similarity(&self, other: &RegionEdgeDescriptor) -> f64 {
        self.similarity(other) / 2.0
    }
}

/// Builds descriptors for a list of region edges, in the same order.
pub fn build_descriptors(rg: &RegionGraph, edges: &[&RegionEdge]) -> Vec<RegionEdgeDescriptor> {
    edges
        .iter()
        .map(|e| RegionEdgeDescriptor::build(rg, e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descr(dis_m: f64, pairs: &[(RoadType, RoadType)]) -> RegionEdgeDescriptor {
        RegionEdgeDescriptor {
            dis_m,
            function_pairs: pairs.iter().copied().collect(),
        }
    }

    #[test]
    fn identical_descriptors_have_maximum_similarity() {
        let a = descr(5000.0, &[(RoadType::Primary, RoadType::Residential)]);
        assert!((a.similarity(&a) - 2.0).abs() < 1e-12);
        assert!((a.normalized_similarity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_ratio_component() {
        let a = descr(2000.0, &[(RoadType::Primary, RoadType::Primary)]);
        let b = descr(4000.0, &[(RoadType::Primary, RoadType::Primary)]);
        // dist sim = 0.5, func sim = 1 -> 1.5 raw, 0.75 normalised.
        assert!((a.similarity(&b) - 1.5).abs() < 1e-12);
        assert!((a.normalized_similarity(&b) - 0.75).abs() < 1e-12);
        // Symmetry.
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
    }

    #[test]
    fn function_jaccard_component() {
        let a = descr(
            3000.0,
            &[
                (RoadType::Primary, RoadType::Residential),
                (RoadType::Primary, RoadType::Primary),
            ],
        );
        let b = descr(3000.0, &[(RoadType::Primary, RoadType::Residential)]);
        // dist sim = 1, Jaccard = 1/2 -> 1.5.
        assert!((a.similarity(&b) - 1.5).abs() < 1e-12);
        let c = descr(3000.0, &[(RoadType::Motorway, RoadType::Motorway)]);
        // Disjoint functionality: 1 + 0.
        assert!((a.similarity(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_distances() {
        let a = descr(0.0, &[]);
        let b = descr(0.0, &[]);
        // Both zero distance and both empty functionality: fully similar.
        assert!((a.similarity(&b) - 2.0).abs() < 1e-12);
        let c = descr(100.0, &[]);
        // lo/hi with lo = 0 gives 0 distance similarity.
        assert!((a.similarity(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn descriptor_from_region_graph_is_consistent() {
        use l2r_datagen::{
            generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
        };
        use l2r_region_graph::{bottom_up_clustering, RegionGraph, TrajectoryGraph};

        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(150));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        let rg = RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2);
        let edges: Vec<&RegionEdge> = rg.edges().iter().collect();
        assert!(!edges.is_empty());
        let descriptors = build_descriptors(&rg, &edges);
        assert_eq!(descriptors.len(), edges.len());
        for (d, e) in descriptors.iter().zip(&edges) {
            assert!(d.dis_m >= 0.0);
            assert!((d.dis_m - rg.region_distance_m(e.a, e.b)).abs() < 1e-9);
            // Self-similarity is always maximal.
            assert!((d.normalized_similarity(d) - 1.0).abs() < 1e-12);
        }
    }
}
