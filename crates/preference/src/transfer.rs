//! Transferring routing preferences from T-edges to B-edges with graph-based
//! transduction learning (Section V-B, Step 2).
//!
//! A similarity graph is built over region edges (labelled T-edges plus the
//! target edges whose preference is unknown); similarities below the
//! adjacency-matrix-reduction threshold `amr` are dropped.  The transferred
//! preference matrix `Ŷ` minimises the objective of Equation 2, obtained by
//! solving `(S + μ₁L + μ₂I)·Ŷ_x = S·Y_x` per feature column (Equation 3).
//! Target edges whose row of `Ŷ` stays (numerically) zero — typically because
//! the similarity graph left them disconnected from every labelled edge —
//! receive a *null* preference; the caller falls back to fastest paths for
//! them, as the paper does.

use std::collections::HashMap;

use l2r_region_graph::{RegionEdgeId, RegionGraph};

use crate::model::{Preference, NUM_FEATURES};
use crate::re_sim::RegionEdgeDescriptor;
use crate::solver::{solve, SolveResult, SolverKind};
use crate::sparse::SparseMatrix;

/// Configuration of the transfer step.
#[derive(Debug, Clone, Copy)]
pub struct TransferConfig {
    /// Adjacency-matrix reduction threshold on the *normalised* region-edge
    /// similarity (`reSim/2 ∈ [0, 1]`); pairs below it are not connected.
    pub amr: f64,
    /// Weight of the Laplacian (smoothness) term.
    pub mu1: f64,
    /// Weight of the L2 regularisation term.
    pub mu2: f64,
    /// Which linear solver to use.
    pub solver: SolverKind,
    /// Relative residual tolerance of the solver.
    pub tolerance: f64,
    /// Iteration budget of the solver.
    pub max_iterations: usize,
    /// Minimum probability mass required on the best road-type column for a
    /// slave feature to be adopted during decoding.
    pub slave_threshold: f64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            amr: 0.7,
            mu1: 1.0,
            mu2: 0.01,
            solver: SolverKind::ConjugateGradient,
            tolerance: 1e-8,
            max_iterations: 500,
            slave_threshold: 0.05,
        }
    }
}

/// Result of a transfer run.
#[derive(Debug, Clone)]
pub struct TransferResult {
    /// Transferred preference per target edge (`None` = null preference).
    pub preferences: HashMap<RegionEdgeId, Option<Preference>>,
    /// Fraction of target edges that received a null preference.
    pub null_rate: f64,
    /// Number of edges (labelled + target) in the similarity graph.
    pub graph_size: usize,
    /// Number of non-zero similarity entries kept after applying `amr`.
    pub similarity_edges: usize,
    /// Total solver iterations summed over the feature columns.
    pub solver_iterations: usize,
}

/// The exact distance-ratio similarity `RegionEdgeDescriptor::similarity`
/// computes for a pair of centroid distances (same branches, same float ops).
fn distance_sim(a: f64, b: f64) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if hi <= 0.0 {
        1.0
    } else {
        (lo / hi).clamp(0.0, 1.0)
    }
}

/// Builds the thresholded similarity graph naively: for each row `i`, every
/// column `j > i` is tested against `amr`.  `O(n²)` similarity evaluations.
///
/// Kept public (next to the radius-bounded [`build_similarity_rows`]) so the
/// bench harness can measure the speedup of the bounded construction on the
/// descriptors of a real fitted model.
pub fn build_similarity_rows_naive(
    descriptors: &[RegionEdgeDescriptor],
    amr: f64,
) -> Vec<Vec<(usize, f64)>> {
    let n = descriptors.len();
    let row_indices: Vec<usize> = (0..n).collect();
    l2r_par::par_map(&row_indices, |_, &i| {
        let mut row = Vec::new();
        for j in (i + 1)..n {
            let s = descriptors[i].normalized_similarity(&descriptors[j]);
            if s >= amr {
                row.push((j, s));
            }
        }
        row
    })
}

/// Radius-bounded construction of the thresholded similarity graph.
///
/// `normalizedSim = (distSim + funcSim) / 2` with `funcSim ≤ 1`, so a pair
/// can only reach `amr` while `(distSim + 1) / 2 ≥ amr`.  Sorting the edges
/// by centroid distance makes `distSim = lo/hi` monotonically non-increasing
/// along each scan, so the scan stops at the first candidate outside that
/// bound instead of touching all `n` columns.  The bound reuses the exact
/// float expression `similarity` evaluates and rounding is monotone, so no
/// qualifying pair is ever skipped: the rows returned are bit-identical to
/// [`build_similarity_rows_naive`] (pairs are redistributed back to
/// original-index rows and sorted).  For `amr ≤ 0.5` the bound is vacuous
/// and the scan degenerates to the naive full scan.
pub fn build_similarity_rows(
    descriptors: &[RegionEdgeDescriptor],
    amr: f64,
) -> Vec<Vec<(usize, f64)>> {
    let n = descriptors.len();
    // Sort by centroid distance; ties break on the original index so the
    // order (and thus the parallel work split) is deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        descriptors[a]
            .dis_m
            .total_cmp(&descriptors[b].dis_m)
            .then(a.cmp(&b))
    });
    let positions: Vec<usize> = (0..n).collect();
    let scans: Vec<Vec<(usize, usize, f64)>> = l2r_par::par_map(&positions, |_, &p| {
        let i = order[p];
        let di = &descriptors[i];
        let mut found = Vec::new();
        for &j in &order[p + 1..] {
            let dj = &descriptors[j];
            // Even a perfect functionality match cannot reach `amr` once the
            // distance ratio drops below 2·amr − 1; later candidates are at
            // least as far, so their ratio is no better.
            if (distance_sim(di.dis_m, dj.dis_m) + 1.0) / 2.0 < amr {
                break;
            }
            let s = di.normalized_similarity(dj);
            if s >= amr {
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                found.push((a, b, s));
            }
        }
        found
    });
    // Redistribute into rows keyed by the smaller original index, sorted by
    // column, to match the naive row layout exactly.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (a, b, s) in scans.into_iter().flatten() {
        rows[a].push((b, s));
    }
    for row in &mut rows {
        row.sort_unstable_by_key(|&(j, _)| j);
    }
    rows
}

/// Transfers preferences from labelled edges to `targets`.
///
/// * `labeled` — learned preferences of T-edges (the training data).
/// * `targets` — region edges to infer preferences for (B-edges during the
///   normal pipeline; held-out T-edges in the Figure 9 experiments).
pub fn transfer_preferences(
    rg: &RegionGraph,
    labeled: &HashMap<RegionEdgeId, Preference>,
    targets: &[RegionEdgeId],
    config: &TransferConfig,
) -> TransferResult {
    // Order: labelled edges first, then targets (mirrors the paper's S
    // construction); an edge that is both labelled and a target is treated as
    // a target so that the experiments can hold out known labels.
    let mut ids: Vec<RegionEdgeId> = Vec::new();
    let target_set: std::collections::HashSet<RegionEdgeId> = targets.iter().copied().collect();
    // l2r: allow(nondeterministic-iteration) — collected then sorted below
    for id in labeled.keys() {
        if !target_set.contains(id) {
            ids.push(*id);
        }
    }
    let num_labeled = ids.len();
    ids[..num_labeled].sort();
    let mut target_ids: Vec<RegionEdgeId> = targets.to_vec();
    target_ids.sort();
    target_ids.dedup();
    ids.extend(target_ids.iter().copied());
    let n = ids.len();

    if n == 0 || num_labeled == 0 {
        // Nothing to learn from: every target gets a null preference.
        let preferences: HashMap<RegionEdgeId, Option<Preference>> =
            target_ids.iter().map(|id| (*id, None)).collect();
        let null_rate = if target_ids.is_empty() { 0.0 } else { 1.0 };
        return TransferResult {
            preferences,
            null_rate,
            graph_size: n,
            similarity_edges: 0,
            solver_iterations: 0,
        };
    }

    // Descriptors and the thresholded similarity (adjacency) matrix M.  Both
    // are embarrassingly parallel: descriptors per edge, similarities per
    // row; the rows are merged into M serially in row order so the matrix is
    // identical to a serial construction.  The rows come from the
    // radius-bounded builder, which is bit-identical to the naive scan.
    let descriptors: Vec<RegionEdgeDescriptor> =
        l2r_par::par_map(&ids, |_, id| RegionEdgeDescriptor::build(rg, rg.edge(*id)));
    let rows = build_similarity_rows(&descriptors, config.amr);
    let mut m = SparseMatrix::zeros(n);
    let mut similarity_edges = 0usize;
    for (i, row) in rows.iter().enumerate() {
        for &(j, s) in row {
            m.add(i, j, s);
            m.add(j, i, s);
            similarity_edges += 1;
        }
    }

    // A = S + mu1 * L + mu2 * I, with L = D - M.
    let mut a = SparseMatrix::zeros(n);
    for i in 0..n {
        let degree = m.row_sum(i);
        let s_ii = if i < num_labeled { 1.0 } else { 0.0 };
        a.add(i, i, s_ii + config.mu1 * degree + config.mu2);
        for (j, v) in m.row(i) {
            if *j != i {
                a.add(i, *j, -config.mu1 * v);
            }
        }
    }

    // Solve one system per feature column; the columns are independent, so
    // they run in parallel and are written back in column order.
    let mut y_hat = vec![[0.0f64; NUM_FEATURES]; n];
    let columns: Vec<usize> = (0..NUM_FEATURES).collect();
    let solutions: Vec<Option<SolveResult>> = l2r_par::par_map(&columns, |_, &x| {
        let mut b = vec![0.0; n];
        let mut any = false;
        for (i, id) in ids.iter().take(num_labeled).enumerate() {
            let row = labeled[id].to_feature_row();
            if row[x] != 0.0 {
                b[i] = row[x]; // S·Y has ones only on labelled rows
                any = true;
            }
        }
        if !any {
            return None;
        }
        Some(solve(
            config.solver,
            &a,
            &b,
            config.tolerance,
            config.max_iterations,
        ))
    });
    let mut solver_iterations = 0usize;
    for (x, res) in solutions.into_iter().enumerate() {
        let Some(res) = res else { continue };
        solver_iterations += res.iterations;
        for (row, &value) in y_hat.iter_mut().zip(res.x.iter()).take(n) {
            row[x] = value;
        }
    }

    // Decode the target rows: targets occupy the tail of `ids` in
    // `target_ids` order (labelled-only edges come first).
    let mut preferences = HashMap::with_capacity(target_ids.len());
    let mut nulls = 0usize;
    for (i, id) in target_ids.iter().enumerate() {
        let idx = num_labeled + i;
        debug_assert_eq!(ids[idx], *id);
        let pref = Preference::from_feature_row(&y_hat[idx], config.slave_threshold);
        if pref.is_none() {
            nulls += 1;
        }
        preferences.insert(*id, pref);
    }
    let null_rate = if target_ids.is_empty() {
        0.0
    } else {
        nulls as f64 / target_ids.len() as f64
    };

    TransferResult {
        preferences,
        null_rate,
        graph_size: n,
        similarity_edges,
        solver_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    use l2r_region_graph::{bottom_up_clustering, RegionGraph, TrajectoryGraph};
    use l2r_road_network::{CostType, RoadType, RoadTypeSet};

    fn build_region_graph() -> RegionGraph {
        let syn = generate_network(&SyntheticNetworkConfig::tiny());
        let wl = generate_workload(&syn, &WorkloadConfig::tiny(250));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        RegionGraph::build(&syn.net, &clusters, &wl.trajectories, 2)
    }

    fn label_all_t_edges(rg: &RegionGraph) -> HashMap<RegionEdgeId, Preference> {
        // Synthetic labels: alternate between two preferences so the transfer
        // has signal to propagate.
        rg.t_edges()
            .enumerate()
            .map(|(i, e)| {
                let pref = if i % 2 == 0 {
                    Preference {
                        master: CostType::TravelTime,
                        slave: Some(RoadTypeSet::single(RoadType::Motorway)),
                    }
                } else {
                    Preference {
                        master: CostType::Distance,
                        slave: Some(RoadTypeSet::single(RoadType::Residential)),
                    }
                };
                (e.id, pref)
            })
            .collect()
    }

    #[test]
    fn transfer_assigns_preferences_to_b_edges() {
        let rg = build_region_graph();
        let labeled = label_all_t_edges(&rg);
        let targets: Vec<RegionEdgeId> = rg.b_edges().map(|e| e.id).collect();
        assert!(!labeled.is_empty());
        assert!(
            !targets.is_empty(),
            "the tiny workload must produce some B-edges"
        );
        let result = transfer_preferences(&rg, &labeled, &targets, &TransferConfig::default());
        assert_eq!(result.preferences.len(), targets.len());
        assert!(
            result.null_rate < 1.0,
            "at least some B-edges must receive a preference"
        );
        // Every decoded preference uses a valid master feature.
        for p in result.preferences.values().flatten() {
            assert!(CostType::ALL.contains(&p.master));
        }
        assert!(result.graph_size >= targets.len());
    }

    #[test]
    fn holding_out_labels_recovers_similar_preferences() {
        // Label all T-edges with the *same* preference, hold a fifth of them
        // out, and check that the transferred preferences match the held-out
        // ground truth (the Figure 9(a) accuracy methodology).
        let rg = build_region_graph();
        let uniform = Preference {
            master: CostType::TravelTime,
            slave: Some(RoadTypeSet::single(RoadType::Motorway)),
        };
        let all: Vec<RegionEdgeId> = rg.t_edges().map(|e| e.id).collect();
        assert!(all.len() >= 5);
        let held_out: Vec<RegionEdgeId> = all.iter().step_by(5).copied().collect();
        let labeled: HashMap<RegionEdgeId, Preference> = all
            .iter()
            .filter(|id| !held_out.contains(id))
            .map(|id| (*id, uniform))
            .collect();
        let config = TransferConfig {
            amr: 0.5, // denser graph so every held-out edge is reachable
            ..TransferConfig::default()
        };
        let result = transfer_preferences(&rg, &labeled, &held_out, &config);
        let mut correct = 0usize;
        let mut assigned = 0usize;
        for p in result.preferences.values().flatten() {
            assigned += 1;
            if p.master == uniform.master {
                correct += 1;
            }
        }
        assert!(assigned > 0);
        assert!(
            correct as f64 / assigned as f64 > 0.9,
            "uniform labels should transfer almost perfectly ({correct}/{assigned})"
        );
    }

    #[test]
    fn higher_amr_produces_sparser_graphs_and_more_nulls() {
        let rg = build_region_graph();
        let labeled = label_all_t_edges(&rg);
        let targets: Vec<RegionEdgeId> = rg.b_edges().map(|e| e.id).collect();
        let loose = transfer_preferences(
            &rg,
            &labeled,
            &targets,
            &TransferConfig {
                amr: 0.5,
                ..TransferConfig::default()
            },
        );
        let strict = transfer_preferences(
            &rg,
            &labeled,
            &targets,
            &TransferConfig {
                amr: 0.95,
                ..TransferConfig::default()
            },
        );
        assert!(strict.similarity_edges <= loose.similarity_edges);
        assert!(strict.null_rate >= loose.null_rate);
    }

    #[test]
    fn radius_bounded_rows_match_the_naive_scan_on_a_real_graph() {
        let rg = build_region_graph();
        let edges: Vec<&l2r_region_graph::RegionEdge> = rg.edges().iter().collect();
        let descriptors = crate::re_sim::build_descriptors(&rg, &edges);
        assert!(descriptors.len() > 10, "need a non-trivial graph");
        // Spans the Figure 9(b) range plus the vacuous-bound regime (≤ 0.5)
        // and a threshold no pair can reach.
        for amr in [0.0, 0.3, 0.5, 0.7, 0.9, 0.95, 1.1] {
            let naive = build_similarity_rows_naive(&descriptors, amr);
            let bounded = build_similarity_rows(&descriptors, amr);
            assert_eq!(naive, bounded, "rows diverged at amr = {amr}");
        }
    }

    #[test]
    fn no_labels_means_all_null() {
        let rg = build_region_graph();
        let targets: Vec<RegionEdgeId> = rg.b_edges().map(|e| e.id).collect();
        let result =
            transfer_preferences(&rg, &HashMap::new(), &targets, &TransferConfig::default());
        assert_eq!(result.null_rate, 1.0);
        assert!(result.preferences.values().all(|p| p.is_none()));
    }

    #[test]
    fn jacobi_and_cg_agree_on_transferred_masters() {
        let rg = build_region_graph();
        let labeled = label_all_t_edges(&rg);
        let targets: Vec<RegionEdgeId> = rg.b_edges().map(|e| e.id).collect();
        let cg = transfer_preferences(&rg, &labeled, &targets, &TransferConfig::default());
        let ja = transfer_preferences(
            &rg,
            &labeled,
            &targets,
            &TransferConfig {
                solver: SolverKind::Jacobi,
                max_iterations: 2000,
                ..TransferConfig::default()
            },
        );
        let mut agreements = 0usize;
        let mut comparable = 0usize;
        for (id, p) in &cg.preferences {
            if let (Some(a), Some(b)) = (p, ja.preferences.get(id).copied().flatten()) {
                comparable += 1;
                if a.master == b.master {
                    agreements += 1;
                }
            }
        }
        if comparable > 0 {
            assert!(agreements as f64 / comparable as f64 > 0.8);
        }
    }
}
