//! Learning routing preferences for T-edges (Section V-A, Step 1).
//!
//! For a T-edge with observed path set `P_ij`, the learner finds the
//! preference vector whose constructed paths best match the observed paths
//! under the Equation 1 similarity.  A full search over all
//! (master, slave) combinations is avoided by the paper's coordinate-descent
//! style procedure: first pick the best travel-cost (master) feature, then
//! test whether any road-condition (slave) feature improves the similarity
//! further.

use l2r_region_graph::SupportedPath;
use l2r_road_network::{
    CostType, OverlapIndex, Path, RoadNetwork, RoadType, RoadTypeSet, SearchSpace,
};

use crate::model::Preference;

/// Configuration of the preference learner.
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// Candidate slave (road-condition) features to test after the master
    /// feature has been chosen.
    pub candidate_slaves: Vec<RoadTypeSet>,
    /// Minimum improvement in mean similarity a slave feature must provide to
    /// be adopted.
    pub min_improvement: f64,
    /// Cap on the number of observed paths evaluated per T-edge (the most
    /// supported paths are used first); keeps learning fast on hot edges.
    pub max_paths: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            candidate_slaves: default_candidate_slaves(),
            min_improvement: 0.01,
            max_paths: 12,
        }
    }
}

/// The default slave candidates: each single road type plus the combined
/// "highways" feature (motorway + trunk), mirroring the paper's example
/// features ("highways", "residential roads", "highways and residential").
pub fn default_candidate_slaves() -> Vec<RoadTypeSet> {
    let mut v: Vec<RoadTypeSet> = RoadType::ALL
        .iter()
        .map(|rt| RoadTypeSet::single(*rt))
        .collect();
    v.push(RoadTypeSet::from_iter([
        RoadType::Motorway,
        RoadType::Trunk,
    ]));
    v.push(RoadTypeSet::from_iter([
        RoadType::Primary,
        RoadType::Secondary,
    ]));
    v
}

/// A learned preference together with the similarity it achieves on the
/// training paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedPreference {
    /// The learned preference vector.
    pub preference: Preference,
    /// Mean (support-weighted) Equation 1 similarity of the constructed paths
    /// against the observed paths.
    pub similarity: f64,
}

/// Mean support-weighted similarity of paths constructed under
/// `(master, slave)` against the observed paths, searching through the
/// caller's reusable `space`.  `overlaps[i]` is the precomputed Equation 1
/// index of `paths[i]` (built once per observed path, reused across every
/// candidate preference).
fn evaluate(
    space: &mut SearchSpace,
    net: &RoadNetwork,
    paths: &[&SupportedPath],
    overlaps: &[OverlapIndex],
    master: CostType,
    slave: Option<RoadTypeSet>,
) -> f64 {
    let mut total_weight = 0.0;
    let mut total_sim = 0.0;
    for (sp, overlap) in paths.iter().zip(overlaps) {
        let gt = &sp.path;
        let constructed: Option<Path> = match slave {
            Some(s) => space.preference_constrained_path(
                net,
                gt.source(),
                gt.destination(),
                master,
                Some(s),
            ),
            None => space.lowest_cost_path(net, gt.source(), gt.destination(), master),
        };
        // Constructed paths come from shortest-path trees and never repeat a
        // segment, so the precomputed index applies.
        let sim = constructed
            .map(|p| overlap.similarity_to_simple(&p))
            .unwrap_or(0.0);
        let w = sp.support as f64;
        total_sim += sim * w;
        total_weight += w;
    }
    if total_weight > 0.0 {
        total_sim / total_weight
    } else {
        0.0
    }
}

/// Learns the representative routing preference of one T-edge from its
/// observed path set.  Returns `None` when the path set is empty.
///
/// Thin wrapper over [`learn_edge_preference_in`] using the calling thread's
/// shared search space; loops learning many edges (or worker threads) should
/// hold their own [`SearchSpace`] and call the `_in` variant.
pub fn learn_edge_preference(
    net: &RoadNetwork,
    paths: &[SupportedPath],
    config: &LearnConfig,
) -> Option<LearnedPreference> {
    SearchSpace::with_thread_local(|space| learn_edge_preference_in(space, net, paths, config))
}

/// [`learn_edge_preference`] with an explicit, reusable [`SearchSpace`]: all
/// candidate-preference searches run through `space` without per-query
/// allocation.
pub fn learn_edge_preference_in(
    space: &mut SearchSpace,
    net: &RoadNetwork,
    paths: &[SupportedPath],
    config: &LearnConfig,
) -> Option<LearnedPreference> {
    if paths.is_empty() {
        return None;
    }
    // Use the most supported paths first, capped for efficiency.
    let mut ordered: Vec<&SupportedPath> = paths.iter().collect();
    ordered.sort_by_key(|p| std::cmp::Reverse(p.support));
    ordered.truncate(config.max_paths.max(1));
    let overlaps: Vec<OverlapIndex> = ordered
        .iter()
        .map(|sp| OverlapIndex::new(net, &sp.path))
        .collect();

    // Step 1: choose the master (travel cost) feature.  Similarity is capped
    // at 1.0, so a perfect master cannot be strictly beaten — stop early.
    let mut best_master = CostType::Distance;
    let mut best_master_sim = f64::NEG_INFINITY;
    for master in CostType::ALL {
        let sim = evaluate(space, net, &ordered, &overlaps, master, None);
        if sim > best_master_sim {
            best_master_sim = sim;
            best_master = master;
        }
        if best_master_sim >= 1.0 {
            break;
        }
    }

    // Step 2: test slave (road condition) features on top of the master.
    // A slave is only adopted when it beats `best_sim + min_improvement`;
    // once that bar exceeds the 1.0 similarity cap no candidate can qualify,
    // so the remaining (search-heavy) evaluations are skipped.
    let mut best_slave: Option<RoadTypeSet> = None;
    let mut best_sim = best_master_sim;
    for slave in &config.candidate_slaves {
        if best_sim + config.min_improvement >= 1.0 {
            break;
        }
        let sim = evaluate(space, net, &ordered, &overlaps, best_master, Some(*slave));
        if sim > best_sim + config.min_improvement {
            best_sim = sim;
            best_slave = Some(*slave);
        }
    }

    Some(LearnedPreference {
        preference: Preference {
            master: best_master,
            slave: best_slave,
        },
        similarity: best_sim,
    })
}

/// Learns one preference **per observed path** of a T-edge.  Used by the
/// Figure 6(a) experiment, which counts how many distinct preferences the
/// paths of a single T-edge exhibit.
pub fn learn_per_path_preferences(
    net: &RoadNetwork,
    paths: &[SupportedPath],
    config: &LearnConfig,
) -> Vec<LearnedPreference> {
    SearchSpace::with_thread_local(|space| {
        paths
            .iter()
            .filter_map(|sp| learn_edge_preference_in(space, net, std::slice::from_ref(sp), config))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_road_network::{fastest_path, lowest_cost_path, Point, RoadNetworkBuilder, VertexId};

    /// Two routes from 0 to 3: short residential via 2, long motorway via 1.
    fn two_route_network() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(5000.0, 4000.0));
        let v2 = b.add_vertex(Point::new(5000.0, -200.0));
        let v3 = b.add_vertex(Point::new(10000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Motorway).unwrap();
        b.add_two_way(v1, v3, RoadType::Motorway).unwrap();
        b.add_two_way(v0, v2, RoadType::Residential).unwrap();
        b.add_two_way(v2, v3, RoadType::Residential).unwrap();
        b.build()
    }

    fn supported(path: Path, support: usize) -> SupportedPath {
        SupportedPath { path, support }
    }

    #[test]
    fn learns_travel_time_for_motorway_drivers() {
        let net = two_route_network();
        // Drivers from 0 to 3 who took the motorway route: the fastest path
        // explains their choice, the shortest does not.
        let motorway_path = fastest_path(&net, VertexId(0), VertexId(3)).unwrap();
        assert!(motorway_path.contains(VertexId(1)));
        let learned = learn_edge_preference(
            &net,
            &[supported(motorway_path, 5)],
            &LearnConfig::default(),
        )
        .unwrap();
        assert_eq!(learned.preference.master, CostType::TravelTime);
        assert!(learned.similarity > 0.99);
    }

    #[test]
    fn learns_distance_for_shortcut_drivers() {
        let net = two_route_network();
        let short = Path::new(vec![VertexId(0), VertexId(2), VertexId(3)]).unwrap();
        let learned =
            learn_edge_preference(&net, &[supported(short, 3)], &LearnConfig::default()).unwrap();
        assert_eq!(learned.preference.master, CostType::Distance);
        assert!(learned.similarity > 0.99);
    }

    #[test]
    fn slave_feature_is_only_adopted_when_it_helps() {
        let net = two_route_network();
        // The fastest path already matches perfectly, so no slave feature can
        // improve the similarity by more than `min_improvement`.
        let motorway_path = fastest_path(&net, VertexId(0), VertexId(3)).unwrap();
        let learned = learn_edge_preference(
            &net,
            &[supported(motorway_path, 1)],
            &LearnConfig::default(),
        )
        .unwrap();
        assert_eq!(learned.preference.slave, None);
    }

    #[test]
    fn slave_feature_recovers_road_class_preference() {
        // Two routes from 0 to 3: the residential route via 2 is shorter,
        // faster and more economical; the primary route via 1 is a huge
        // detour.  Drivers nevertheless take the primary route, so no single
        // travel-cost feature explains the observed path — only the
        // road-class slave feature does.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(5000.0, 14000.0));
        let v2 = b.add_vertex(Point::new(5000.0, -200.0));
        let v3 = b.add_vertex(Point::new(10000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Primary).unwrap();
        b.add_two_way(v1, v3, RoadType::Primary).unwrap();
        b.add_two_way(v0, v2, RoadType::Residential).unwrap();
        b.add_two_way(v2, v3, RoadType::Residential).unwrap();
        let net = b.build();
        // Sanity: every single-cost optimum uses the residential route.
        for cost in CostType::ALL {
            let opt = lowest_cost_path(&net, v0, v3, cost).unwrap();
            assert!(
                opt.contains(v2),
                "{cost} optimum should use the residential route"
            );
        }
        let observed = Path::new(vec![v0, v1, v3]).unwrap();
        let learned =
            learn_edge_preference(&net, &[supported(observed, 4)], &LearnConfig::default())
                .unwrap();
        let slave = learned
            .preference
            .slave
            .expect("a road-class slave feature is needed");
        assert!(slave.contains(RoadType::Primary));
        assert!(
            learned.similarity > 0.9,
            "similarity {}",
            learned.similarity
        );
    }

    #[test]
    fn empty_path_set_returns_none() {
        let net = two_route_network();
        assert!(learn_edge_preference(&net, &[], &LearnConfig::default()).is_none());
    }

    #[test]
    fn per_path_preferences_distinguish_mixed_edges() {
        let net = two_route_network();
        let fast = fastest_path(&net, VertexId(0), VertexId(3)).unwrap();
        let short = Path::new(vec![VertexId(0), VertexId(2), VertexId(3)]).unwrap();
        let prefs = learn_per_path_preferences(
            &net,
            &[supported(fast, 1), supported(short, 1)],
            &LearnConfig::default(),
        );
        assert_eq!(prefs.len(), 2);
        let unique: std::collections::HashSet<_> = prefs.iter().map(|p| p.preference).collect();
        assert_eq!(
            unique.len(),
            2,
            "the two paths reflect different preferences"
        );
    }
}
