//! # l2r-preference
//!
//! Step 2 of the learn-to-route pipeline (Section V of the paper): the
//! routing-preference model, learning preferences for T-edges, and
//! transferring them to B-edges with graph-based transduction learning.
//!
//! * [`model`] — the `⟨master, slave⟩` preference vector and its feature
//!   embedding;
//! * [`learning`] — the coordinate-descent preference learner for T-edges;
//! * [`re_sim`] — region-edge descriptors and the `reSim` similarity;
//! * [`sparse`] / [`solver`] — the sparse matrix and the Jacobi /
//!   conjugate-gradient solvers behind Equation 3 (substituting the Junto
//!   library used by the paper);
//! * [`transfer`] — the transduction step that assigns preferences to
//!   B-edges (or to held-out T-edges for the Figure 9 accuracy experiments).

#![warn(missing_docs)]

pub mod codec;
pub mod learning;
pub mod model;
pub mod re_sim;
pub mod solver;
pub mod sparse;
pub mod transfer;

pub use learning::{
    default_candidate_slaves, learn_edge_preference, learn_edge_preference_in,
    learn_per_path_preferences, LearnConfig, LearnedPreference,
};
pub use model::{Preference, NUM_FEATURES};
pub use re_sim::{build_descriptors, RegionEdgeDescriptor};
pub use solver::{conjugate_gradient, jacobi, solve, SolveResult, SolverKind};
pub use sparse::SparseMatrix;
pub use transfer::{
    build_similarity_rows, build_similarity_rows_naive, transfer_preferences, TransferConfig,
    TransferResult,
};
