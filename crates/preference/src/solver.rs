//! Iterative linear solvers for the transduction system
//! `(S + μ₁L + μ₂I) · ŷ = S · y` (Equation 3 of the paper).
//!
//! The system matrix is symmetric positive definite (S and I are diagonal
//! with non-negative entries, L is a graph Laplacian, μ₂ > 0), so both the
//! Jacobi iteration and the conjugate-gradient method apply.  The paper
//! mentions both; CG is the default because it converges much faster on
//! poorly conditioned similarity graphs.

use crate::sparse::SparseMatrix;

/// Which iterative solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Conjugate gradient (default).
    ConjugateGradient,
    /// Jacobi iteration.
    Jacobi,
}

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A·x‖₂`.
    pub residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Solves `A·x = b` with the conjugate-gradient method.
pub fn conjugate_gradient(a: &SparseMatrix, b: &[f64], tol: f64, max_iter: usize) -> SolveResult {
    let n = a.dim();
    assert_eq!(b.len(), n, "dimension mismatch");
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let b_norm = norm(b).max(1e-30);
    let mut iterations = 0;
    if rs_old.sqrt() / b_norm <= tol {
        return SolveResult {
            x,
            iterations,
            residual: rs_old.sqrt(),
            converged: true,
        };
    }
    for _ in 0..max_iter {
        iterations += 1;
        let ap = a.matvec(&p);
        let denom = dot(&p, &ap);
        if denom.abs() < 1e-300 {
            break;
        }
        let alpha = rs_old / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        if rs_new.sqrt() / b_norm <= tol {
            return SolveResult {
                x,
                iterations,
                residual: rs_new.sqrt(),
                converged: true,
            };
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    let residual = norm(&sub(b, &a.matvec(&x)));
    SolveResult {
        x,
        iterations,
        residual,
        converged: residual / b_norm <= tol,
    }
}

/// Solves `A·x = b` with the Jacobi iteration (requires non-zero diagonal).
pub fn jacobi(a: &SparseMatrix, b: &[f64], tol: f64, max_iter: usize) -> SolveResult {
    let n = a.dim();
    assert_eq!(b.len(), n, "dimension mismatch");
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    let b_norm = norm(b).max(1e-30);
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        for i in 0..n {
            let mut sum = 0.0;
            let mut diag = 0.0;
            for (j, v) in a.row(i) {
                if *j == i {
                    diag = *v;
                } else {
                    sum += v * x[*j];
                }
            }
            next[i] = if diag.abs() > 1e-300 {
                (b[i] - sum) / diag
            } else {
                0.0
            };
        }
        std::mem::swap(&mut x, &mut next);
        let residual = norm(&sub(b, &a.matvec(&x)));
        if residual / b_norm <= tol {
            return SolveResult {
                x,
                iterations,
                residual,
                converged: true,
            };
        }
    }
    let residual = norm(&sub(b, &a.matvec(&x)));
    SolveResult {
        x,
        iterations,
        residual,
        converged: residual / b_norm <= tol,
    }
}

/// Dispatches to the chosen solver.
pub fn solve(
    kind: SolverKind,
    a: &SparseMatrix,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> SolveResult {
    match kind {
        SolverKind::ConjugateGradient => conjugate_gradient(a, b, tol, max_iter),
        SolverKind::Jacobi => jacobi(a, b, tol, max_iter),
    }
}

fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small SPD system with a known solution.
    fn spd_system() -> (SparseMatrix, Vec<f64>, Vec<f64>) {
        // A = [[4, 1, 0], [1, 3, 1], [0, 1, 5]], x* = [1, 2, 3]
        let mut a = SparseMatrix::zeros(3);
        a.add(0, 0, 4.0);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        a.add(1, 1, 3.0);
        a.add(1, 2, 1.0);
        a.add(2, 1, 1.0);
        a.add(2, 2, 5.0);
        let x_true = vec![1.0, 2.0, 3.0];
        let b = a.matvec(&x_true);
        (a, b, x_true)
    }

    #[test]
    fn conjugate_gradient_solves_spd_system() {
        let (a, b, x_true) = spd_system();
        let res = conjugate_gradient(&a, &b, 1e-10, 100);
        assert!(res.converged);
        for (xi, ti) in res.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
        assert!(
            res.iterations <= 3 + 1,
            "CG converges in at most n iterations"
        );
    }

    #[test]
    fn jacobi_solves_diagonally_dominant_system() {
        let (a, b, x_true) = spd_system();
        let res = jacobi(&a, &b, 1e-10, 500);
        assert!(res.converged);
        for (xi, ti) in res.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7);
        }
    }

    #[test]
    fn solver_dispatch_produces_same_answer() {
        let (a, b, _) = spd_system();
        let cg = solve(SolverKind::ConjugateGradient, &a, &b, 1e-10, 200);
        let ja = solve(SolverKind::Jacobi, &a, &b, 1e-10, 500);
        for (x, y) in cg.x.iter().zip(&ja.x) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let (a, _, _) = spd_system();
        let res = conjugate_gradient(&a, &[0.0, 0.0, 0.0], 1e-12, 10);
        assert!(res.converged);
        assert!(res.x.iter().all(|v| v.abs() < 1e-12));
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn identity_system_is_trivial() {
        let mut a = SparseMatrix::zeros(4);
        for i in 0..4 {
            a.add(i, i, 1.0);
        }
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let res = conjugate_gradient(&a, &b, 1e-12, 10);
        assert!(res.converged);
        for (x, y) in res.x.iter().zip(&b) {
            assert!((x - y).abs() < 1e-10);
        }
    }
}
