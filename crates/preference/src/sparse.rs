//! A minimal sparse symmetric matrix used by the transduction solver.
//!
//! The systems solved during preference transfer are small (one row per
//! region edge) but sparse; a row-major adjacency-list representation with a
//! mat-vec product is all the conjugate-gradient and Jacobi solvers need.

/// A square sparse matrix stored as per-row `(column, value)` lists.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    n: usize,
    rows: Vec<Vec<(usize, f64)>>,
}

impl SparseMatrix {
    /// An `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SparseMatrix {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    /// Adds `value` to entry `(i, j)`.
    ///
    /// # Panics
    /// Panics when the indices are out of range (internal misuse).
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        if value == 0.0 {
            return;
        }
        if let Some(entry) = self.rows[i].iter_mut().find(|(c, _)| *c == j) {
            entry.1 += value;
        } else {
            self.rows[i].push((j, value));
        }
    }

    /// Returns entry `(i, j)` (0.0 when absent).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.rows
            .get(i)
            .and_then(|r| r.iter().find(|(c, _)| *c == j))
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// Sum of row `i`.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.rows[i].iter().map(|(_, v)| *v).sum()
    }

    /// The diagonal entry of row `i`.
    pub fn diagonal(&self, i: usize) -> f64 {
        self.get(i, i)
    }

    /// Dense mat-vec product `A · x`.
    ///
    /// # Panics
    /// Panics when `x.len() != dim()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        for (i, row) in self.rows.iter().enumerate() {
            let mut acc = 0.0;
            for (j, v) in row {
                acc += v * x[*j];
            }
            y[i] = acc;
        }
        y
    }

    /// Iterates over the entries of row `i`.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_accumulate() {
        let mut m = SparseMatrix::zeros(3);
        assert_eq!(m.dim(), 3);
        m.add(0, 1, 2.0);
        m.add(0, 1, 1.0);
        m.add(2, 2, 5.0);
        m.add(1, 0, 0.0); // zero insertions are ignored
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.diagonal(2), 5.0);
        assert_eq!(m.row_sum(0), 3.0);
    }

    #[test]
    fn matvec_matches_dense_computation() {
        // [[2, 1, 0], [1, 3, 0], [0, 0, 1]] * [1, 2, 3] = [4, 7, 3]
        let mut m = SparseMatrix::zeros(3);
        m.add(0, 0, 2.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 3.0);
        m.add(2, 2, 1.0);
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![4.0, 7.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_wrong_dimension() {
        let m = SparseMatrix::zeros(2);
        let _ = m.matvec(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn add_rejects_out_of_range() {
        let mut m = SparseMatrix::zeros(2);
        m.add(2, 0, 1.0);
    }
}
