//! Snapshot codec for the preference layer: routing preferences, learned
//! T-edge preferences and the pipeline configuration types, in the wire
//! format of [`l2r_road_network::codec`].

use l2r_road_network::{CodecError, CostType, Decode, Encode, Reader, RoadTypeSet, Writer};

use crate::learning::{LearnConfig, LearnedPreference};
use crate::model::Preference;
use crate::solver::SolverKind;
use crate::transfer::TransferConfig;

impl Encode for Preference {
    fn encode(&self, w: &mut Writer) {
        self.master.encode(w);
        match self.slave {
            Some(s) => {
                w.bool(true);
                s.encode(w);
            }
            None => w.bool(false),
        }
    }
}

impl Decode for Preference {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let master = CostType::decode(r)?;
        let slave = if r.bool("preference slave flag")? {
            Some(RoadTypeSet::decode(r)?)
        } else {
            None
        };
        Ok(Preference { master, slave })
    }
}

impl Encode for LearnedPreference {
    fn encode(&self, w: &mut Writer) {
        self.preference.encode(w);
        w.f64(self.similarity);
    }
}

impl Decode for LearnedPreference {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(LearnedPreference {
            preference: Preference::decode(r)?,
            similarity: r.f64("learned similarity")?,
        })
    }
}

impl Encode for LearnConfig {
    fn encode(&self, w: &mut Writer) {
        w.seq(&self.candidate_slaves);
        w.f64(self.min_improvement);
        w.length(self.max_paths);
    }
}

impl Decode for LearnConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(LearnConfig {
            candidate_slaves: r.seq("candidate slave count", 1)?,
            min_improvement: r.f64("min improvement")?,
            max_paths: r.u64("max paths")? as usize,
        })
    }
}

impl Encode for SolverKind {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            SolverKind::ConjugateGradient => 0,
            SolverKind::Jacobi => 1,
        });
    }
}

impl Decode for SolverKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8("solver kind")? {
            0 => Ok(SolverKind::ConjugateGradient),
            1 => Ok(SolverKind::Jacobi),
            _ => Err(CodecError::Invalid("unknown solver kind")),
        }
    }
}

impl Encode for TransferConfig {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.amr);
        w.f64(self.mu1);
        w.f64(self.mu2);
        self.solver.encode(w);
        w.f64(self.tolerance);
        w.length(self.max_iterations);
        w.f64(self.slave_threshold);
    }
}

impl Decode for TransferConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TransferConfig {
            amr: r.f64("amr")?,
            mu1: r.f64("mu1")?,
            mu2: r.f64("mu2")?,
            solver: SolverKind::decode(r)?,
            tolerance: r.f64("solver tolerance")?,
            max_iterations: r.u64("solver iteration budget")? as usize,
            slave_threshold: r.f64("slave threshold")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_road_network::RoadType;

    fn roundtrip<T: Encode + Decode>(value: &T) -> T {
        let mut w = Writer::new();
        value.encode(&mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let decoded = T::decode(&mut r).expect("decode");
        assert!(r.is_exhausted(), "trailing bytes after decode");
        decoded
    }

    #[test]
    fn preferences_roundtrip() {
        for p in [
            Preference::cost_only(CostType::Fuel),
            Preference::with_road_type(CostType::TravelTime, RoadType::Motorway),
            Preference {
                master: CostType::Distance,
                slave: Some(RoadTypeSet::from_iter([
                    RoadType::Primary,
                    RoadType::Secondary,
                ])),
            },
        ] {
            assert_eq!(roundtrip(&p), p);
        }
    }

    #[test]
    fn learned_preferences_roundtrip_bit_exactly() {
        let lp = LearnedPreference {
            preference: Preference::with_road_type(CostType::TravelTime, RoadType::Trunk),
            similarity: 0.1 + 0.2, // deliberately not a round float
        };
        let back = roundtrip(&lp);
        assert_eq!(back.preference, lp.preference);
        assert_eq!(back.similarity.to_bits(), lp.similarity.to_bits());
    }

    #[test]
    fn configs_roundtrip() {
        let lc = LearnConfig::default();
        let back = roundtrip(&lc);
        assert_eq!(back.candidate_slaves, lc.candidate_slaves);
        assert_eq!(back.min_improvement.to_bits(), lc.min_improvement.to_bits());
        assert_eq!(back.max_paths, lc.max_paths);

        for solver in [SolverKind::ConjugateGradient, SolverKind::Jacobi] {
            let tc = TransferConfig {
                solver,
                ..TransferConfig::default()
            };
            let back = roundtrip(&tc);
            assert_eq!(back.amr.to_bits(), tc.amr.to_bits());
            assert_eq!(back.solver, tc.solver);
            assert_eq!(back.max_iterations, tc.max_iterations);
        }
    }

    #[test]
    fn bad_tags_error() {
        assert!(SolverKind::decode(&mut Reader::new(&[9])).is_err());
        // Preference with a bad master tag.
        assert!(Preference::decode(&mut Reader::new(&[8, 0])).is_err());
        // Preference with a bad slave flag.
        assert!(Preference::decode(&mut Reader::new(&[0, 7])).is_err());
    }
}
