//! Modularity-based, road-type-constrained bottom-up clustering —
//! Algorithm 1 of the paper ("BottomUpClustering", Section IV-A).
//!
//! Starting from the trajectory graph, every traversed vertex is a cluster.
//! The algorithm repeatedly pops the most popular cluster, checks which of
//! its neighbours qualify for merging (positive modularity gain and a
//! consistent road type, Table I), selects the largest road-type-consistent
//! subset (`SelectM`), cuts edges to the rejected neighbours, and merges the
//! selected ones into an aggregate cluster.  A cluster that pops with no
//! remaining neighbours becomes a region.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

use l2r_road_network::{RoadType, VertexId};

use crate::trajectory_graph::TrajectoryGraph;

/// Modularity gain `∆Q_{ij} = s_ij / S − S_i · S_j / S²` of merging two
/// clusters connected by an edge of popularity `s_ij` (Section IV-A).
pub fn modularity_gain(s_ij: f64, s_i: f64, s_j: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    s_ij / total - (s_i * s_j) / (total * total)
}

/// A cluster produced by the algorithm: the future region.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Member vertices.
    pub vertices: Vec<VertexId>,
    /// Total popularity (sum of the members' popularities).
    pub popularity: f64,
    /// The dominant road type of the cluster (None for a single vertex that
    /// never merged).
    pub road_type: Option<RoadType>,
}

/// Internal cluster node state during the agglomeration.
#[derive(Debug, Clone)]
struct Node {
    vertices: Vec<VertexId>,
    popularity: f64,
    /// `None` while the node is a simple (never merged) vertex.
    road_type: Option<RoadType>,
    alive: bool,
    /// Finalised as a region.
    finished: bool,
}

impl Node {
    fn is_simple(&self) -> bool {
        self.road_type.is_none()
    }
}

/// Inter-node connection: combined popularity and the road type carrying the
/// most popularity between the two nodes.
#[derive(Debug, Clone, Copy)]
struct Connection {
    popularity: f64,
    road_type: RoadType,
    road_type_popularity: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    popularity: f64,
    node: usize,
    /// Version counter to invalidate stale heap entries after a merge.
    version: u64,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.popularity
            .total_cmp(&other.popularity)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    // l2r: allow(float-total-cmp) — trait-mandated shim; delegates to the
    // total_cmp-based Ord above, so no NaN-unsafe comparison happens here.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Algorithm 1 on a trajectory graph and returns the clusters (regions).
///
/// Clusters are returned in descending popularity order.  Vertices that were
/// never traversed by a trajectory are not part of any cluster.
pub fn bottom_up_clustering(tg: &TrajectoryGraph) -> Vec<Cluster> {
    let total = tg.total_popularity();
    // Index traversed vertices densely.
    let vertex_list: Vec<VertexId> = {
        let mut v: Vec<VertexId> = tg.vertices().collect();
        v.sort();
        v
    };
    let index_of: HashMap<VertexId, usize> = vertex_list
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, i))
        .collect();

    let mut nodes: Vec<Node> = vertex_list
        .iter()
        .map(|v| Node {
            vertices: vec![*v],
            popularity: tg.vertex_popularity(*v),
            road_type: None,
            alive: true,
            finished: false,
        })
        .collect();

    // Adjacency between nodes.
    let mut adj: Vec<HashMap<usize, Connection>> = vec![HashMap::new(); nodes.len()];
    for ((a, b), s, rt) in tg.edges() {
        let ia = index_of[&a];
        let ib = index_of[&b];
        let conn = Connection {
            popularity: s,
            road_type: rt,
            road_type_popularity: s,
        };
        adj[ia].insert(ib, conn);
        adj[ib].insert(ia, conn);
    }

    let mut versions: Vec<u64> = vec![0; nodes.len()];
    let mut heap: BinaryHeap<HeapEntry> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| HeapEntry {
            popularity: n.popularity,
            node: i,
            version: 0,
        })
        .collect();

    let mut clusters: Vec<Cluster> = Vec::new();

    while let Some(entry) = heap.pop() {
        let k = entry.node;
        if !nodes[k].alive || nodes[k].finished || entry.version != versions[k] {
            continue;
        }

        // Adjacent alive nodes (VA), in index order: HashMap iteration order
        // varies between runs, and the neighbour order influences merge
        // order (and through float summation the exact popularity values),
        // so it must be deterministic.
        let neighbors: Vec<usize> = {
            // l2r: allow(nondeterministic-iteration) — collected then sorted below
            let mut v: Vec<usize> = adj[k].keys().copied().filter(|j| nodes[*j].alive).collect();
            v.sort_unstable();
            v
        };
        if neighbors.is_empty() {
            nodes[k].finished = true;
            clusters.push(Cluster {
                vertices: nodes[k].vertices.clone(),
                popularity: nodes[k].popularity,
                road_type: nodes[k].road_type,
            });
            continue;
        }

        // CheckQ: positive modularity gain + road type conditions (Table I).
        let mut qualified: Vec<usize> = Vec::new();
        for &j in &neighbors {
            let conn = adj[k][&j];
            let gain = modularity_gain(
                conn.popularity,
                nodes[k].popularity,
                nodes[j].popularity,
                total,
            );
            if gain <= 0.0 {
                continue;
            }
            let ok = match (nodes[k].is_simple(), nodes[j].is_simple()) {
                (true, true) => true,
                (false, true) => nodes[k].road_type == Some(conn.road_type),
                (true, false) => nodes[j].road_type == Some(conn.road_type),
                (false, false) => nodes[k].road_type == nodes[j].road_type,
            };
            if ok {
                qualified.push(j);
            }
        }

        // SelectM: if vk is simple, keep only the largest subset whose
        // connecting edges share one road type; if vk is aggregate, all
        // qualified neighbours are kept (their types already match vk.RT).
        let selected: Vec<usize> = if nodes[k].is_simple() {
            let mut by_type: HashMap<RoadType, Vec<usize>> = HashMap::new();
            for &j in &qualified {
                by_type.entry(adj[k][&j].road_type).or_default().push(j);
            }
            by_type
                .into_iter()
                .max_by(|a, b| {
                    a.1.len()
                        .cmp(&b.1.len())
                        .then_with(|| a.0.index().cmp(&b.0.index()).reverse())
                })
                .map(|(_, v)| v)
                .unwrap_or_default()
        } else {
            qualified
        };
        let selected_set: HashSet<usize> = selected.iter().copied().collect();

        // Cut edges to every adjacent node that was not selected.
        for &j in &neighbors {
            if !selected_set.contains(&j) {
                adj[k].remove(&j);
                adj[j].remove(&k);
            }
        }

        if selected.is_empty() {
            // Nothing to merge; vk goes back to the queue (it will pop with
            // no neighbours next time and become a region, or gain new
            // neighbours through other merges never happens — neighbours only
            // disappear — so this terminates).
            versions[k] += 1;
            heap.push(HeapEntry {
                popularity: nodes[k].popularity,
                node: k,
                version: versions[k],
            });
            continue;
        }

        // Merge the selected neighbours into vk.
        // The road type of the merged aggregate: vk's type if it has one,
        // otherwise the type of the connecting edges (MergeSS).
        let merged_road_type = nodes[k]
            .road_type
            .unwrap_or_else(|| adj[k][&selected[0]].road_type);

        for &j in &selected {
            let j_vertices = std::mem::take(&mut nodes[j].vertices);
            let j_pop = nodes[j].popularity;
            let j_neighbors: Vec<(usize, Connection)> = {
                let mut v: Vec<(usize, Connection)> = adj[j]
                    .iter()
                    .map(|(n, c)| (*n, *c))
                    .filter(|(n, _)| *n != k)
                    .collect();
                v.sort_unstable_by_key(|(n, _)| *n);
                v
            };
            nodes[j].alive = false;
            adj[j].clear();
            adj[k].remove(&j);

            nodes[k].vertices.extend(j_vertices);
            nodes[k].popularity += j_pop;

            // Re-wire j's other neighbours to k, combining parallel edges.
            for (n, c) in j_neighbors {
                adj[n].remove(&j);
                if !nodes[n].alive {
                    continue;
                }
                let entry = adj[k].entry(n).or_insert(Connection {
                    popularity: 0.0,
                    road_type: c.road_type,
                    road_type_popularity: 0.0,
                });
                entry.popularity += c.popularity;
                if c.road_type == entry.road_type {
                    entry.road_type_popularity += c.road_type_popularity;
                } else if c.road_type_popularity > entry.road_type_popularity {
                    entry.road_type = c.road_type;
                    entry.road_type_popularity = c.road_type_popularity;
                }
                let back = *entry;
                adj[n].insert(k, back);
            }
        }
        nodes[k].road_type = Some(merged_road_type);

        versions[k] += 1;
        heap.push(HeapEntry {
            popularity: nodes[k].popularity,
            node: k,
            version: versions[k],
        });
    }

    // Any alive, unfinished nodes (cannot normally happen) become clusters.
    for n in nodes.iter().filter(|n| n.alive && !n.finished) {
        clusters.push(Cluster {
            vertices: n.vertices.clone(),
            popularity: n.popularity,
            road_type: n.road_type,
        });
    }

    clusters.sort_by(|a, b| {
        b.popularity
            .total_cmp(&a.popularity)
            .then_with(|| a.vertices.first().cmp(&b.vertices.first()))
    });
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_road_network::{Path, Point, RoadNetwork, RoadNetworkBuilder, RoadType};
    use l2r_trajectory::{DriverId, MatchedTrajectory, TrajectoryId};

    fn traj(id: u32, vs: Vec<u32>) -> MatchedTrajectory {
        MatchedTrajectory::new(
            TrajectoryId(id),
            DriverId(0),
            Path::new(vs.into_iter().map(VertexId).collect()).unwrap(),
            0.0,
        )
    }

    #[test]
    fn modularity_gain_formula() {
        // s_ij = 4, S_i = 6, S_j = 8, S = 20 -> 4/20 - 48/400 = 0.2 - 0.12.
        assert!((modularity_gain(4.0, 6.0, 8.0, 20.0) - 0.08).abs() < 1e-12);
        assert_eq!(modularity_gain(1.0, 1.0, 1.0, 0.0), 0.0);
        // Unpopular edge between two very popular vertices: negative gain.
        assert!(modularity_gain(1.0, 50.0, 50.0, 100.0) < 0.0);
    }

    /// Builds the paper's Figure 3 style scenario: two dense corridors of the
    /// same road type connected by a low-popularity link of another type.
    fn two_corridor_network() -> (RoadNetwork, Vec<MatchedTrajectory>) {
        let mut b = RoadNetworkBuilder::new();
        // Corridor A: vertices 0-1-2 (primary), corridor B: 3-4-5 (residential),
        // connected by a secondary edge 2-3.
        for i in 0..6 {
            b.add_vertex(Point::new(i as f64 * 500.0, 0.0));
        }
        b.add_two_way(VertexId(0), VertexId(1), RoadType::Primary)
            .unwrap();
        b.add_two_way(VertexId(1), VertexId(2), RoadType::Primary)
            .unwrap();
        b.add_two_way(VertexId(2), VertexId(3), RoadType::Secondary)
            .unwrap();
        b.add_two_way(VertexId(3), VertexId(4), RoadType::Residential)
            .unwrap();
        b.add_two_way(VertexId(4), VertexId(5), RoadType::Residential)
            .unwrap();
        let net = b.build();
        // Many trajectories inside each corridor, a single one crossing.
        let mut ts = Vec::new();
        for i in 0..10 {
            ts.push(traj(i, vec![0, 1, 2]));
            ts.push(traj(100 + i, vec![3, 4, 5]));
        }
        ts.push(traj(999, vec![0, 1, 2, 3, 4, 5]));
        (net, ts)
    }

    #[test]
    fn corridors_become_separate_clusters() {
        let (net, ts) = two_corridor_network();
        let tg = TrajectoryGraph::build(&net, &ts);
        let clusters = bottom_up_clustering(&tg);
        // Expect (at least) two multi-vertex clusters, one per corridor,
        // split by road type and the unpopular crossing edge.
        let corridor_a: HashSet<VertexId> = [0, 1, 2].into_iter().map(VertexId).collect();
        let corridor_b: HashSet<VertexId> = [3, 4, 5].into_iter().map(VertexId).collect();
        let mut found_a = false;
        let mut found_b = false;
        for c in &clusters {
            let set: HashSet<VertexId> = c.vertices.iter().copied().collect();
            if set == corridor_a {
                found_a = true;
                assert_eq!(c.road_type, Some(RoadType::Primary));
            }
            if set == corridor_b {
                found_b = true;
                assert_eq!(c.road_type, Some(RoadType::Residential));
            }
        }
        assert!(found_a, "corridor A should form one region: {:?}", clusters);
        assert!(found_b, "corridor B should form one region: {:?}", clusters);
    }

    #[test]
    fn every_traversed_vertex_lands_in_exactly_one_cluster() {
        let (net, ts) = two_corridor_network();
        let tg = TrajectoryGraph::build(&net, &ts);
        let clusters = bottom_up_clustering(&tg);
        let mut seen: HashMap<VertexId, usize> = HashMap::new();
        for c in &clusters {
            for v in &c.vertices {
                *seen.entry(*v).or_default() += 1;
            }
        }
        assert_eq!(seen.len(), tg.num_vertices());
        assert!(seen.values().all(|c| *c == 1), "no vertex may appear twice");
    }

    #[test]
    fn popularity_is_preserved_by_merging() {
        let (net, ts) = two_corridor_network();
        let tg = TrajectoryGraph::build(&net, &ts);
        let clusters = bottom_up_clustering(&tg);
        let total_vertex_pop: f64 = tg.vertices().map(|v| tg.vertex_popularity(v)).sum();
        let total_cluster_pop: f64 = clusters.iter().map(|c| c.popularity).sum();
        assert!((total_vertex_pop - total_cluster_pop).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_yields_no_clusters() {
        let net = RoadNetworkBuilder::new().build();
        let tg = TrajectoryGraph::build(&net, &[]);
        assert!(bottom_up_clustering(&tg).is_empty());
    }

    #[test]
    fn isolated_popular_corridor_is_not_merged_across_road_types() {
        // A star: center 0 with primary edge to 1 and residential edges to 2,3.
        let mut b = RoadNetworkBuilder::new();
        for i in 0..4 {
            b.add_vertex(Point::new(i as f64 * 300.0, (i % 2) as f64 * 300.0));
        }
        b.add_two_way(VertexId(0), VertexId(1), RoadType::Primary)
            .unwrap();
        b.add_two_way(VertexId(0), VertexId(2), RoadType::Residential)
            .unwrap();
        b.add_two_way(VertexId(0), VertexId(3), RoadType::Residential)
            .unwrap();
        let net = b.build();
        let ts = vec![
            traj(0, vec![1, 0, 2]),
            traj(1, vec![1, 0, 3]),
            traj(2, vec![2, 0, 3]),
        ];
        let tg = TrajectoryGraph::build(&net, &ts);
        let clusters = bottom_up_clustering(&tg);
        // The center merges with road-type-consistent neighbours only, so no
        // cluster may contain both a primary-linked and residential-linked
        // vertex set with mixed type.
        for c in &clusters {
            if c.vertices.len() > 1 {
                assert!(c.road_type.is_some());
            }
        }
        // All four vertices are accounted for.
        let n: usize = clusters.iter().map(|c| c.vertices.len()).sum();
        assert_eq!(n, 4);
    }

    #[test]
    fn clustering_terminates_on_a_larger_synthetic_workload() {
        let syn = l2r_datagen::generate_network(&l2r_datagen::SyntheticNetworkConfig::tiny());
        let wl = l2r_datagen::generate_workload(&syn, &l2r_datagen::WorkloadConfig::tiny(200));
        let tg = TrajectoryGraph::build(&syn.net, &wl.trajectories);
        let clusters = bottom_up_clustering(&tg);
        assert!(!clusters.is_empty());
        // Regions should be smaller than the whole traversed graph (the
        // algorithm controls region size automatically).
        let largest = clusters.iter().map(|c| c.vertices.len()).max().unwrap();
        assert!(largest < tg.num_vertices());
        // Multi-vertex clusters exist (the point of clustering).
        assert!(clusters.iter().any(|c| c.vertices.len() > 1));
    }
}
