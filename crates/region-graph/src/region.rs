//! Regions: clusters of road-network vertices with geometric and functional
//! descriptors (Sections IV and V-B of the paper).

use l2r_road_network::{
    centroid, convex_hull, diameter, polygon_area, Point, RoadNetwork, RoadType, RoadTypeSet,
    VertexId,
};

/// Identifier of a region (dense, `0..num_regions`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The id as a usable index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A region of the region graph.
#[derive(Debug, Clone)]
pub struct Region {
    /// The region id.
    pub id: RegionId,
    /// Member vertices.
    pub vertices: Vec<VertexId>,
    /// Total trajectory popularity of the region (from clustering).
    pub popularity: f64,
    /// Dominant road type from clustering, when the region was formed by
    /// merging (None for single-vertex regions).
    pub road_type: Option<RoadType>,
    /// Geometric centroid of the member vertices.
    pub centroid: Point,
    /// Convex-hull area in square metres.
    pub hull_area_m2: f64,
    /// Maximum diameter of the convex hull in metres.
    pub diameter_m: f64,
    /// Functionality descriptor: the top-k road types of edges incident to
    /// the region's vertices (Section V-B).
    pub function: RoadTypeSet,
}

impl Region {
    /// Builds a region (with all derived descriptors) from its member
    /// vertices.
    ///
    /// `top_k` bounds the number of road types kept in the functionality
    /// descriptor (the paper uses a top-k road type set; we default to 2 at
    /// the call sites).
    pub fn build(
        id: RegionId,
        net: &RoadNetwork,
        vertices: Vec<VertexId>,
        popularity: f64,
        road_type: Option<RoadType>,
        top_k: usize,
    ) -> Region {
        let points: Vec<Point> = vertices.iter().map(|v| net.vertex(*v).point).collect();
        let hull = convex_hull(&points);
        let function = region_function(net, &vertices, top_k);
        Region {
            id,
            vertices,
            popularity,
            road_type,
            centroid: centroid(&points),
            hull_area_m2: polygon_area(&hull),
            diameter_m: diameter(&hull),
            function,
        }
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the region has no members (never true for built regions).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Convex-hull area in square kilometres (Table IV reports km²).
    pub fn hull_area_km2(&self) -> f64 {
        self.hull_area_m2 / 1.0e6
    }

    /// Hull diameter in kilometres.
    pub fn diameter_km(&self) -> f64 {
        self.diameter_m / 1000.0
    }

    /// Whether `v` belongs to the region.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }
}

/// The functionality descriptor of a vertex set: the `top_k` road types (by
/// total incident edge length-weighted count) of the edges incident to the
/// vertices.
pub fn region_function(net: &RoadNetwork, vertices: &[VertexId], top_k: usize) -> RoadTypeSet {
    let mut counts = [0usize; RoadType::COUNT];
    for v in vertices {
        if v.idx() >= net.num_vertices() {
            continue;
        }
        for e in net.out_edges(*v) {
            counts[e.road_type.index()] += 1;
        }
        for e in net.in_edges(*v) {
            counts[e.road_type.index()] += 1;
        }
    }
    let mut order: Vec<usize> = (0..RoadType::COUNT).filter(|i| counts[*i] > 0).collect();
    order.sort_by(|a, b| counts[*b].cmp(&counts[*a]).then(a.cmp(b)));
    let mut set = RoadTypeSet::empty();
    for idx in order.into_iter().take(top_k.max(1)) {
        if let Some(rt) = RoadType::from_index(idx) {
            set.insert(rt);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_road_network::RoadNetworkBuilder;

    fn square_region_net() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        // A 2 km x 2 km square of primary roads plus one residential spur.
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(2000.0, 0.0));
        let v2 = b.add_vertex(Point::new(2000.0, 2000.0));
        let v3 = b.add_vertex(Point::new(0.0, 2000.0));
        let v4 = b.add_vertex(Point::new(3000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Primary).unwrap();
        b.add_two_way(v1, v2, RoadType::Primary).unwrap();
        b.add_two_way(v2, v3, RoadType::Primary).unwrap();
        b.add_two_way(v3, v0, RoadType::Primary).unwrap();
        b.add_two_way(v1, v4, RoadType::Residential).unwrap();
        b.build()
    }

    #[test]
    fn geometric_descriptors() {
        let net = square_region_net();
        let r = Region::build(
            RegionId(0),
            &net,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)],
            10.0,
            Some(RoadType::Primary),
            2,
        );
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!((r.hull_area_km2() - 4.0).abs() < 1e-9);
        assert!((r.diameter_km() - (8.0f64).sqrt()).abs() < 1e-9);
        assert!((r.centroid.x - 1000.0).abs() < 1e-9);
        assert!((r.centroid.y - 1000.0).abs() < 1e-9);
        assert!(r.contains(VertexId(0)));
        assert!(!r.contains(VertexId(4)));
    }

    #[test]
    fn function_descriptor_picks_dominant_road_types() {
        let net = square_region_net();
        let f = region_function(
            &net,
            &[VertexId(0), VertexId(1), VertexId(2), VertexId(3)],
            2,
        );
        assert!(f.contains(RoadType::Primary));
        // With top-2 the residential spur (only two directed edges at v1)
        // also appears since only two types exist.
        assert!(f.len() <= 2);
        let f1 = region_function(&net, &[VertexId(0), VertexId(3)], 1);
        assert_eq!(f1.len(), 1);
        assert!(f1.contains(RoadType::Primary));
    }

    #[test]
    fn single_vertex_region_has_zero_area() {
        let net = square_region_net();
        let r = Region::build(RegionId(3), &net, vec![VertexId(4)], 1.0, None, 2);
        assert_eq!(r.hull_area_m2, 0.0);
        assert_eq!(r.diameter_m, 0.0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn function_descriptor_handles_unknown_vertices_gracefully() {
        let net = square_region_net();
        let f = region_function(&net, &[VertexId(999)], 2);
        assert!(f.is_empty());
    }
}
