//! The region graph `G_R = (V_R, E_R)` (Section IV-B of the paper).
//!
//! Region vertices are the clusters produced by [`crate::clustering`];
//! region edges come in two flavours:
//!
//! * **T-edges** are created from trajectories: if a trajectory visited a
//!   vertex of region `R_i` and later a vertex of region `R_j`, the edge
//!   `(R_i, R_j)` exists and is associated with the sub-paths the
//!   trajectories used between leaving `R_i` and entering `R_j`.  The leave /
//!   enter vertices become *transfer centers* of the two regions, and the
//!   sub-path a trajectory used inside a region is stored as an
//!   *inner-region path*.
//! * **B-edges** are added by a BFS over the road network to make the region
//!   graph connected; they carry no paths until Step 3 of the pipeline
//!   assigns them preference-based paths.

use std::collections::{HashMap, HashSet, VecDeque};

use l2r_road_network::{Path, RoadNetwork, VertexId};
use l2r_trajectory::MatchedTrajectory;

use crate::clustering::Cluster;
use crate::region::{Region, RegionId};

/// Identifier of a region edge (dense, `0..num_edges`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionEdgeId(pub u32);

impl RegionEdgeId {
    /// The id as a usable index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Whether a region edge was created from trajectories or by the BFS
/// connectivity pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionEdgeKind {
    /// Trajectory-backed edge with observed paths.
    TEdge,
    /// BFS-created edge without observed paths.
    BEdge,
}

/// A road-network path associated with a region edge, together with the
/// number of trajectories that used it.
#[derive(Debug, Clone, PartialEq)]
pub struct SupportedPath {
    /// The path (oriented as driven).
    pub path: Path,
    /// Number of trajectories that used exactly this path.
    pub support: usize,
}

/// An edge of the region graph (stored undirected, endpoints canonicalised
/// so that `a <= b`).
#[derive(Debug, Clone)]
pub struct RegionEdge {
    /// The edge id.
    pub id: RegionEdgeId,
    /// First endpoint (`a <= b`).
    pub a: RegionId,
    /// Second endpoint.
    pub b: RegionId,
    /// T-edge or B-edge.
    pub kind: RegionEdgeKind,
    /// Paths associated with the edge (observed for T-edges, assigned in
    /// Step 3 for B-edges).
    pub paths: Vec<SupportedPath>,
}

impl RegionEdge {
    /// The endpoint that is not `r` (panics if `r` is not an endpoint —
    /// callers always hold a valid endpoint).
    pub fn other(&self, r: RegionId) -> RegionId {
        if r == self.a {
            self.b
        } else {
            debug_assert_eq!(r, self.b);
            self.a
        }
    }

    /// Whether the edge is trajectory-backed.
    pub fn is_t_edge(&self) -> bool {
        self.kind == RegionEdgeKind::TEdge
    }

    /// Whether the edge was created by the BFS connectivity pass.
    pub fn is_b_edge(&self) -> bool {
        self.kind == RegionEdgeKind::BEdge
    }

    /// Whether the edge has at least one usable path.
    pub fn has_paths(&self) -> bool {
        !self.paths.is_empty()
    }
}

/// The region graph.
///
/// Field visibility is `pub(crate)` so the snapshot codec
/// ([`crate::codec`]) can take the graph apart and reassemble it; external
/// code goes through the accessor methods.
#[derive(Debug, Clone)]
pub struct RegionGraph {
    pub(crate) regions: Vec<Region>,
    pub(crate) edges: Vec<RegionEdge>,
    pub(crate) adjacency: Vec<Vec<RegionEdgeId>>,
    pub(crate) vertex_region: HashMap<VertexId, RegionId>,
    pub(crate) inner_paths: Vec<Vec<SupportedPath>>,
    pub(crate) transfer_centers: Vec<Vec<VertexId>>,
    /// Per-region fallback returned by [`RegionGraph::transfer_centers_or_default`]
    /// when no trajectory crossed the region boundary: the vertex closest to
    /// the region centroid, resolved once at build time so the query path
    /// never recomputes (or re-allocates) it.
    pub(crate) fallback_centers: Vec<Vec<VertexId>>,
    pub(crate) edge_lookup: HashMap<(RegionId, RegionId), RegionEdgeId>,
}

fn canonical(a: RegionId, b: RegionId) -> (RegionId, RegionId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl RegionGraph {
    /// Builds the region graph from clusters and the training trajectories.
    ///
    /// `function_top_k` controls how many road types the region
    /// functionality descriptor keeps (the paper's top-k road type set).
    pub fn build(
        net: &RoadNetwork,
        clusters: &[Cluster],
        trajectories: &[MatchedTrajectory],
        function_top_k: usize,
    ) -> RegionGraph {
        // 1. Regions and the vertex -> region map.
        let mut regions = Vec::with_capacity(clusters.len());
        let mut vertex_region: HashMap<VertexId, RegionId> = HashMap::new();
        for (i, c) in clusters.iter().enumerate() {
            let id = RegionId(i as u32);
            for v in &c.vertices {
                vertex_region.insert(*v, id);
            }
            regions.push(Region::build(
                id,
                net,
                c.vertices.clone(),
                c.popularity,
                c.road_type,
                function_top_k,
            ));
        }

        let mut graph = RegionGraph {
            adjacency: vec![Vec::new(); regions.len()],
            inner_paths: vec![Vec::new(); regions.len()],
            transfer_centers: vec![Vec::new(); regions.len()],
            fallback_centers: vec![Vec::new(); regions.len()],
            regions,
            edges: Vec::new(),
            vertex_region,
            edge_lookup: HashMap::new(),
        };

        // 2. T-edges, transfer centers and inner-region paths from
        // trajectories.
        for t in trajectories {
            graph.ingest_trajectory(t);
        }

        // 3. B-edges from a BFS over the road network.
        graph.add_b_edges(net);

        // 4. Resolve the centroid-vertex fallback for regions that no
        // trajectory crossed, so the online query path can borrow transfer
        // centers instead of recomputing them.
        graph.resolve_fallback_centers(net);

        graph
    }

    /// Region visits of a trajectory: contiguous runs of path positions that
    /// lie in the same region, in visit order.
    fn region_visits(&self, t: &MatchedTrajectory) -> Vec<(RegionId, usize, usize)> {
        let vs = t.path.vertices();
        let mut visits: Vec<(RegionId, usize, usize)> = Vec::new();
        let mut current: Option<(RegionId, usize, usize)> = None;
        for (i, v) in vs.iter().enumerate() {
            match (self.vertex_region.get(v).copied(), &mut current) {
                (Some(r), Some((cr, _, end))) if *cr == r => {
                    *end = i;
                }
                (Some(r), cur) => {
                    if let Some(done) = cur.take() {
                        visits.push(done);
                    }
                    *cur = Some((r, i, i));
                }
                (None, cur) => {
                    if let Some(done) = cur.take() {
                        visits.push(done);
                    }
                }
            }
        }
        if let Some(done) = current {
            visits.push(done);
        }
        visits
    }

    /// Adds the T-edges, inner paths and transfer centers contributed by one
    /// trajectory.
    fn ingest_trajectory(&mut self, t: &MatchedTrajectory) {
        let vs = t.path.vertices();
        let visits = self.region_visits(t);

        // Inner-region paths (a visit spanning more than one vertex) and
        // transfer centers (entry and exit vertices of each visit).
        for &(r, start, end) in &visits {
            let centers = &mut self.transfer_centers[r.idx()];
            for idx in [start, end] {
                if !centers.contains(&vs[idx]) {
                    centers.push(vs[idx]);
                }
            }
            if end > start {
                let inner = Path::new(vs[start..=end].to_vec()).expect("non-empty slice");
                push_supported(&mut self.inner_paths[r.idx()], inner);
            }
        }

        // T-edges between every ordered pair of visited regions.
        for i in 0..visits.len() {
            for j in (i + 1)..visits.len() {
                let (ri, _, exit_i) = visits[i];
                let (rj, enter_j, _) = visits[j];
                if ri == rj {
                    continue;
                }
                let sub = Path::new(vs[exit_i..=enter_j].to_vec()).expect("non-empty slice");
                let eid = self.ensure_edge(ri, rj, RegionEdgeKind::TEdge);
                // A later trajectory may upgrade a B-edge to a T-edge; the
                // BFS pass runs last, so during ingestion every edge is a
                // T-edge already.
                push_supported(&mut self.edges[eid.idx()].paths, sub);
            }
        }
    }

    /// Ensures an edge between two regions exists, returning its id.  An
    /// existing edge keeps its kind, except that a `TEdge` request upgrades a
    /// `BEdge`.
    fn ensure_edge(&mut self, a: RegionId, b: RegionId, kind: RegionEdgeKind) -> RegionEdgeId {
        let key = canonical(a, b);
        if let Some(id) = self.edge_lookup.get(&key) {
            if kind == RegionEdgeKind::TEdge {
                self.edges[id.idx()].kind = RegionEdgeKind::TEdge;
            }
            return *id;
        }
        let id = RegionEdgeId(self.edges.len() as u32);
        self.edges.push(RegionEdge {
            id,
            a: key.0,
            b: key.1,
            kind,
            paths: Vec::new(),
        });
        self.adjacency[key.0.idx()].push(id);
        self.adjacency[key.1.idx()].push(id);
        self.edge_lookup.insert(key, id);
        id
    }

    /// BFS construction of B-edges (Section IV-B): for every region, walk the
    /// road network outwards without passing *through* other regions; every
    /// distinct region reached that is not yet connected gets a B-edge.
    fn add_b_edges(&mut self, net: &RoadNetwork) {
        let region_ids: Vec<RegionId> = self.regions.iter().map(|r| r.id).collect();
        for ri in region_ids {
            let mut visited: HashSet<VertexId> = HashSet::new();
            let mut queue: VecDeque<VertexId> = VecDeque::new();
            for v in &self.regions[ri.idx()].vertices {
                visited.insert(*v);
                queue.push_back(*v);
            }
            let mut reached: HashSet<RegionId> = HashSet::new();
            while let Some(v) = queue.pop_front() {
                let owner = self.vertex_region.get(&v).copied();
                if let Some(rj) = owner {
                    if rj != ri {
                        // Reached a foreign region: record it and do not
                        // expand beyond it.
                        reached.insert(rj);
                        continue;
                    }
                }
                for e in net.out_edges(v) {
                    if visited.insert(e.to) {
                        queue.push_back(e.to);
                    }
                }
            }
            // Sort so B-edge ids are assigned deterministically (HashSet
            // iteration order varies between runs and would otherwise leak
            // into edge numbering and everything keyed on it downstream).
            // l2r: allow(nondeterministic-iteration) — collected then sorted here;
            // the loop below walks the sorted Vec, not the set
            let mut reached: Vec<RegionId> = reached.into_iter().collect();
            reached.sort_unstable();
            // l2r: allow(nondeterministic-iteration) — sorted Vec shadows the set
            for rj in reached {
                self.ensure_edge(ri, rj, RegionEdgeKind::BEdge);
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// All regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The region with the given id.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.idx()]
    }

    /// All region edges.
    pub fn edges(&self) -> &[RegionEdge] {
        &self.edges
    }

    /// Number of region edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given id.
    pub fn edge(&self, id: RegionEdgeId) -> &RegionEdge {
        &self.edges[id.idx()]
    }

    /// T-edges only.
    pub fn t_edges(&self) -> impl Iterator<Item = &RegionEdge> {
        self.edges.iter().filter(|e| e.is_t_edge())
    }

    /// B-edges only.
    pub fn b_edges(&self) -> impl Iterator<Item = &RegionEdge> {
        self.edges.iter().filter(|e| e.is_b_edge())
    }

    /// The region containing `v`, if any.
    pub fn region_of(&self, v: VertexId) -> Option<RegionId> {
        self.vertex_region.get(&v).copied()
    }

    /// Ids of the edges incident to `r`.
    pub fn adjacent_edges(&self, r: RegionId) -> &[RegionEdgeId] {
        &self.adjacency[r.idx()]
    }

    /// The edge between two regions, if any.
    pub fn edge_between(&self, a: RegionId, b: RegionId) -> Option<RegionEdgeId> {
        self.edge_lookup.get(&canonical(a, b)).copied()
    }

    /// Observed inner-region paths of `r`.
    pub fn inner_paths(&self, r: RegionId) -> &[SupportedPath] {
        &self.inner_paths[r.idx()]
    }

    /// Transfer centers of `r` (vertices where trajectories entered or left
    /// the region).
    pub fn transfer_centers(&self, r: RegionId) -> &[VertexId] {
        &self.transfer_centers[r.idx()]
    }

    /// Transfer centers of `r`, falling back to the (build-time resolved)
    /// vertex closest to the region centroid when no trajectory crossed the
    /// region boundary.
    ///
    /// Returns a borrowed slice: this sits on the hot online query path,
    /// where the historical per-call `Vec` clone was pure overhead.
    pub fn transfer_centers_or_default(&self, r: RegionId) -> &[VertexId] {
        let centers = &self.transfer_centers[r.idx()];
        if !centers.is_empty() {
            centers
        } else {
            &self.fallback_centers[r.idx()]
        }
    }

    /// Resolves the per-region centroid-vertex fallback used by
    /// [`RegionGraph::transfer_centers_or_default`] (build step 4).
    fn resolve_fallback_centers(&mut self, net: &RoadNetwork) {
        for (i, region) in self.regions.iter().enumerate() {
            if !self.transfer_centers[i].is_empty() {
                continue;
            }
            let closest = region.vertices.iter().min_by(|a, b| {
                let da = net.vertex(**a).point.distance(&region.centroid);
                let db = net.vertex(**b).point.distance(&region.centroid);
                da.total_cmp(&db)
            });
            if let Some(v) = closest {
                self.fallback_centers[i].push(*v);
            }
        }
    }

    /// Euclidean distance between the centroids of two regions, in metres
    /// (the `dis` element of a region-edge descriptor, Section V-B).
    pub fn region_distance_m(&self, a: RegionId, b: RegionId) -> f64 {
        self.regions[a.idx()]
            .centroid
            .distance(&self.regions[b.idx()].centroid)
    }

    /// Replaces the paths associated with an edge (used by pipeline Step 3 to
    /// attach preference-derived paths to B-edges).
    pub fn set_edge_paths(&mut self, id: RegionEdgeId, paths: Vec<SupportedPath>) {
        self.edges[id.idx()].paths = paths;
    }

    /// Whether the region graph is connected (ignoring regions entirely
    /// without edges when there is more than one region).
    pub fn is_connected(&self) -> bool {
        if self.regions.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; self.regions.len()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(RegionId(0));
        let mut count = 1usize;
        while let Some(r) = queue.pop_front() {
            for eid in self.adjacent_edges(r) {
                let other = self.edge(*eid).other(r);
                if !seen[other.idx()] {
                    seen[other.idx()] = true;
                    count += 1;
                    queue.push_back(other);
                }
            }
        }
        count == self.regions.len()
    }
}

/// Adds `path` to a supported-path list, incrementing the support of an
/// identical existing path instead of storing a duplicate.
fn push_supported(list: &mut Vec<SupportedPath>, path: Path) {
    if let Some(existing) = list.iter_mut().find(|sp| sp.path == path) {
        existing.support += 1;
    } else {
        list.push(SupportedPath { path, support: 1 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::bottom_up_clustering;
    use crate::trajectory_graph::TrajectoryGraph;
    use l2r_road_network::{Point, RoadNetworkBuilder, RoadType};
    use l2r_trajectory::{DriverId, TrajectoryId};

    fn traj(id: u32, vs: Vec<u32>) -> MatchedTrajectory {
        MatchedTrajectory::new(
            TrajectoryId(id),
            DriverId(0),
            Path::new(vs.into_iter().map(VertexId).collect()).unwrap(),
            0.0,
        )
    }

    /// Figure-1-like scenario: two popular corridors (future regions) joined
    /// by one trajectory, plus an untraversed area and an isolated corridor.
    fn figure_like() -> (l2r_road_network::RoadNetwork, Vec<MatchedTrajectory>) {
        let mut b = RoadNetworkBuilder::new();
        // Corridor A: 0-1-2 (primary), corridor B: 3-4-5 (primary),
        // connected by secondary edges 2-3 and through untraversed 6.
        // Isolated corridor C: 7-8 (residential), connected to A only via the
        // untraversed vertex 6.
        for i in 0..9 {
            b.add_vertex(Point::new(i as f64 * 800.0, (i / 3) as f64 * 500.0));
        }
        b.add_two_way(VertexId(0), VertexId(1), RoadType::Primary)
            .unwrap();
        b.add_two_way(VertexId(1), VertexId(2), RoadType::Primary)
            .unwrap();
        b.add_two_way(VertexId(2), VertexId(3), RoadType::Secondary)
            .unwrap();
        b.add_two_way(VertexId(3), VertexId(4), RoadType::Primary)
            .unwrap();
        b.add_two_way(VertexId(4), VertexId(5), RoadType::Primary)
            .unwrap();
        b.add_two_way(VertexId(2), VertexId(6), RoadType::Residential)
            .unwrap();
        b.add_two_way(VertexId(6), VertexId(7), RoadType::Residential)
            .unwrap();
        b.add_two_way(VertexId(7), VertexId(8), RoadType::Residential)
            .unwrap();
        let net = b.build();
        let mut ts = Vec::new();
        for i in 0..8 {
            ts.push(traj(i, vec![0, 1, 2]));
            ts.push(traj(100 + i, vec![3, 4, 5]));
        }
        // One trajectory connecting corridor A to corridor B.
        ts.push(traj(200, vec![1, 2, 3, 4]));
        // A few trajectories on the isolated corridor C.
        for i in 0..4 {
            ts.push(traj(300 + i, vec![7, 8]));
        }
        (net, ts)
    }

    fn build_graph() -> (l2r_road_network::RoadNetwork, RegionGraph) {
        let (net, ts) = figure_like();
        let tg = TrajectoryGraph::build(&net, &ts);
        let clusters = bottom_up_clustering(&tg);
        let rg = RegionGraph::build(&net, &clusters, &ts, 2);
        (net, rg)
    }

    #[test]
    fn t_edges_connect_regions_visited_by_the_same_trajectory() {
        let (_, rg) = build_graph();
        assert!(rg.num_regions() >= 2);
        // The corridor A and corridor B regions must be connected by a T-edge
        // (trajectory 200 visits both).
        let ra = rg.region_of(VertexId(0)).unwrap();
        let rb = rg.region_of(VertexId(5)).unwrap();
        assert_ne!(ra, rb);
        let e = rg
            .edge_between(ra, rb)
            .expect("T-edge between the corridors");
        assert!(rg.edge(e).is_t_edge());
        assert!(rg.edge(e).has_paths());
    }

    #[test]
    fn transfer_centers_are_on_the_region_boundary() {
        let (_, rg) = build_graph();
        let ra = rg.region_of(VertexId(0)).unwrap();
        let centers = rg.transfer_centers(ra);
        assert!(!centers.is_empty());
        // Every transfer center belongs to the region.
        for c in centers {
            assert_eq!(rg.region_of(*c), Some(ra));
        }
    }

    #[test]
    fn inner_paths_are_recorded_with_support() {
        let (_, rg) = build_graph();
        let ra = rg.region_of(VertexId(0)).unwrap();
        let inner = rg.inner_paths(ra);
        assert!(!inner.is_empty());
        // The repeated 0-1-2 trajectory gives one inner path with support >= 8.
        let max_support = inner.iter().map(|sp| sp.support).max().unwrap();
        assert!(max_support >= 8, "max support {}", max_support);
    }

    #[test]
    fn b_edges_make_the_region_graph_connected() {
        let (_, rg) = build_graph();
        // The isolated corridor C region has no trajectory to other regions,
        // so it must be connected through a B-edge.
        let rc = rg.region_of(VertexId(7)).unwrap();
        let adjacent = rg.adjacent_edges(rc);
        assert!(!adjacent.is_empty(), "isolated region must get B-edges");
        assert!(adjacent.iter().any(|e| rg.edge(*e).is_b_edge()));
        assert!(
            rg.is_connected(),
            "the final region graph must be connected"
        );
        // B-edges start without paths.
        for e in rg.b_edges() {
            assert!(!e.has_paths());
        }
    }

    #[test]
    fn region_lookup_and_distances() {
        let (_, rg) = build_graph();
        assert_eq!(
            rg.region_of(VertexId(6)),
            None,
            "untraversed vertices belong to no region"
        );
        let ra = rg.region_of(VertexId(0)).unwrap();
        let rb = rg.region_of(VertexId(5)).unwrap();
        assert!(rg.region_distance_m(ra, rb) > 0.0);
        assert_eq!(rg.region_distance_m(ra, ra), 0.0);
    }

    #[test]
    fn set_edge_paths_attaches_paths_to_b_edges() {
        let (net, mut rg) = build_graph();
        let b_edge = rg.b_edges().next().expect("at least one B-edge").id;
        let (a, b) = (rg.edge(b_edge).a, rg.edge(b_edge).b);
        let ca = rg.transfer_centers_or_default(a)[0];
        let cb = rg.transfer_centers_or_default(b)[0];
        let path = l2r_road_network::fastest_path(&net, ca, cb).unwrap();
        rg.set_edge_paths(b_edge, vec![SupportedPath { path, support: 1 }]);
        assert!(rg.edge(b_edge).has_paths());
    }

    #[test]
    fn transfer_center_fallback_uses_centroid_vertex() {
        let (_, rg) = build_graph();
        for r in rg.regions() {
            let centers = rg.transfer_centers_or_default(r.id);
            assert!(!centers.is_empty());
            for c in centers {
                assert!(r.contains(*c));
            }
        }
    }

    #[test]
    fn transfer_center_default_borrows_and_matches_observed_centers() {
        let (_, rg) = build_graph();
        for r in rg.regions() {
            let observed = rg.transfer_centers(r.id);
            let with_default = rg.transfer_centers_or_default(r.id);
            if observed.is_empty() {
                // Fallback: exactly one vertex, the one closest to the
                // centroid, resolved at build time.
                assert_eq!(with_default.len(), 1);
            } else {
                // Borrowed straight from the observed centers — same slice.
                assert_eq!(observed.as_ptr(), with_default.as_ptr());
                assert_eq!(observed.len(), with_default.len());
            }
        }
    }

    #[test]
    fn trajectory_visiting_three_regions_creates_pairwise_edges() {
        // Three single-corridor regions A(0,1), B(2,3), C(4,5) and one
        // trajectory passing through all three.
        let mut b = RoadNetworkBuilder::new();
        for i in 0..6 {
            b.add_vertex(Point::new(i as f64 * 400.0, 0.0));
        }
        for i in 0..5u32 {
            b.add_two_way(VertexId(i), VertexId(i + 1), RoadType::Primary)
                .unwrap();
        }
        let net = b.build();
        let mut ts = Vec::new();
        for i in 0..5 {
            ts.push(traj(i, vec![0, 1]));
            ts.push(traj(10 + i, vec![2, 3]));
            ts.push(traj(20 + i, vec![4, 5]));
        }
        ts.push(traj(99, vec![0, 1, 2, 3, 4, 5]));
        let tg = TrajectoryGraph::build(&net, &ts);
        let clusters = bottom_up_clustering(&tg);
        let rg = RegionGraph::build(&net, &clusters, &ts, 2);
        let ra = rg.region_of(VertexId(0)).unwrap();
        let rb = rg.region_of(VertexId(2)).unwrap();
        let rc = rg.region_of(VertexId(4)).unwrap();
        if ra != rb && rb != rc && ra != rc {
            // All three pairwise edges exist (up to m(m-1)/2 edges per
            // trajectory, Section IV-B).
            assert!(rg.edge_between(ra, rb).is_some());
            assert!(rg.edge_between(rb, rc).is_some());
            assert!(rg.edge_between(ra, rc).is_some());
        }
    }
}
