//! The trajectory graph: the sub-graph of the road network traversed by
//! trajectories, annotated with popularity values (Section IV-A).
//!
//! * The popularity `s_ij` of an edge is the number of trajectories that
//!   traversed it.
//! * The popularity `S_i` of a vertex is the sum of the popularities of its
//!   incident edges.
//! * `S` is the sum of all edge popularities.
//!
//! Edges are treated as undirected for clustering purposes (a trajectory in
//! either direction contributes to the same corridor).

use std::collections::HashMap;

use l2r_road_network::{RoadNetwork, RoadType, VertexId};
use l2r_trajectory::MatchedTrajectory;

/// An undirected vertex pair, normalised so `a <= b`.
pub type UndirectedEdge = (VertexId, VertexId);

/// Normalises an undirected vertex pair.
pub fn undirected(a: VertexId, b: VertexId) -> UndirectedEdge {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The trajectory graph with popularity annotations.
#[derive(Debug, Clone)]
pub struct TrajectoryGraph {
    /// Popularity `s_ij` and road type per traversed undirected edge.
    edges: HashMap<UndirectedEdge, (f64, RoadType)>,
    /// Popularity `S_i` per traversed vertex.
    vertex_popularity: HashMap<VertexId, f64>,
    /// Adjacency among traversed vertices.
    adjacency: HashMap<VertexId, Vec<VertexId>>,
    /// Total popularity `S`.
    total_popularity: f64,
}

impl TrajectoryGraph {
    /// Builds the trajectory graph from map-matched trajectories.
    ///
    /// Path segments that do not correspond to a road-network edge are
    /// skipped (they cannot occur for validated paths).
    pub fn build(net: &RoadNetwork, trajectories: &[MatchedTrajectory]) -> Self {
        let mut edges: HashMap<UndirectedEdge, (f64, RoadType)> = HashMap::new();
        for t in trajectories {
            for w in t.path.vertices().windows(2) {
                let Some(eid) = net
                    .edge_between(w[0], w[1])
                    .or_else(|| net.edge_between(w[1], w[0]))
                else {
                    continue;
                };
                let rt = net.edge(eid).road_type;
                let entry = edges.entry(undirected(w[0], w[1])).or_insert((0.0, rt));
                entry.0 += 1.0;
            }
        }
        let mut vertex_popularity: HashMap<VertexId, f64> = HashMap::new();
        let mut adjacency: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        let mut total = 0.0;
        // Accumulate in sorted edge order: float `+=` is not associative,
        // so summing in HashMap iteration order would make the popularity
        // totals (and therefore the learned model) differ between two runs
        // over the same input.  Sorting also fixes `neighbors()` order.
        let mut by_edge: Vec<(UndirectedEdge, f64)> =
            // l2r: allow(nondeterministic-iteration) — collected then sorted below
            edges.iter().map(|(e, (s, _))| (*e, *s)).collect();
        by_edge.sort_unstable_by_key(|x| x.0);
        for ((a, b), s) in by_edge {
            total += s;
            *vertex_popularity.entry(a).or_default() += s;
            *vertex_popularity.entry(b).or_default() += s;
            adjacency.entry(a).or_default().push(b);
            adjacency.entry(b).or_default().push(a);
        }
        TrajectoryGraph {
            edges,
            vertex_popularity,
            adjacency,
            total_popularity: total,
        }
    }

    /// Number of traversed vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_popularity.len()
    }

    /// Number of traversed undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All traversed vertices, in no particular order — callers that need
    /// determinism sort (clustering collects and sorts the vertex list
    /// before seeding).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        // l2r: allow(nondeterministic-iteration) — unordered by contract; see doc
        self.vertex_popularity.keys().copied()
    }

    /// Popularity `S_i` of a vertex (0 for untraversed vertices).
    pub fn vertex_popularity(&self, v: VertexId) -> f64 {
        self.vertex_popularity.get(&v).copied().unwrap_or(0.0)
    }

    /// Popularity `s_ij` of an undirected edge (0 when not traversed).
    pub fn edge_popularity(&self, a: VertexId, b: VertexId) -> f64 {
        self.edges
            .get(&undirected(a, b))
            .map(|(s, _)| *s)
            .unwrap_or(0.0)
    }

    /// Road type of a traversed undirected edge.
    pub fn edge_road_type(&self, a: VertexId, b: VertexId) -> Option<RoadType> {
        self.edges.get(&undirected(a, b)).map(|(_, rt)| *rt)
    }

    /// Total popularity `S`.
    pub fn total_popularity(&self) -> f64 {
        self.total_popularity
    }

    /// Traversed neighbours of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.adjacency.get(&v).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All traversed undirected edges with popularity and road type, in no
    /// particular order — callers that need determinism sort or insert into
    /// keyed maps (clustering builds per-vertex adjacency maps from this).
    pub fn edges(&self) -> impl Iterator<Item = (UndirectedEdge, f64, RoadType)> + '_ {
        // l2r: allow(nondeterministic-iteration) — unordered by contract; see doc
        self.edges.iter().map(|(e, (s, rt))| (*e, *s, *rt))
    }

    /// Whether a vertex was traversed by any trajectory.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertex_popularity.contains_key(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_road_network::{Path, Point, RoadNetworkBuilder, RoadType};
    use l2r_trajectory::{DriverId, TrajectoryId};

    fn line(n: usize) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let vs: Vec<VertexId> = (0..n)
            .map(|i| b.add_vertex(Point::new(i as f64 * 100.0, 0.0)))
            .collect();
        for w in vs.windows(2) {
            b.add_two_way(w[0], w[1], RoadType::Primary).unwrap();
        }
        b.build()
    }

    fn traj(id: u32, vs: Vec<u32>) -> MatchedTrajectory {
        MatchedTrajectory::new(
            TrajectoryId(id),
            DriverId(0),
            Path::new(vs.into_iter().map(VertexId).collect()).unwrap(),
            0.0,
        )
    }

    #[test]
    fn popularity_counts_traversals() {
        let net = line(4);
        let ts = vec![
            traj(0, vec![0, 1, 2, 3]),
            traj(1, vec![0, 1, 2]),
            traj(2, vec![3, 2]), // reverse direction counts toward the same edge
        ];
        let tg = TrajectoryGraph::build(&net, &ts);
        assert_eq!(tg.num_vertices(), 4);
        assert_eq!(tg.num_edges(), 3);
        assert_eq!(tg.edge_popularity(VertexId(0), VertexId(1)), 2.0);
        assert_eq!(tg.edge_popularity(VertexId(1), VertexId(2)), 2.0);
        assert_eq!(tg.edge_popularity(VertexId(2), VertexId(3)), 2.0);
        // Vertex popularity = sum of incident edge popularities.
        assert_eq!(tg.vertex_popularity(VertexId(1)), 4.0);
        assert_eq!(tg.vertex_popularity(VertexId(0)), 2.0);
        assert_eq!(tg.total_popularity(), 6.0);
        assert_eq!(
            tg.edge_road_type(VertexId(0), VertexId(1)),
            Some(RoadType::Primary)
        );
    }

    #[test]
    fn untraversed_vertices_are_excluded() {
        let net = line(5);
        let ts = vec![traj(0, vec![0, 1, 2])];
        let tg = TrajectoryGraph::build(&net, &ts);
        assert!(tg.contains_vertex(VertexId(0)));
        assert!(!tg.contains_vertex(VertexId(4)));
        assert_eq!(tg.vertex_popularity(VertexId(4)), 0.0);
        assert_eq!(tg.edge_popularity(VertexId(3), VertexId(4)), 0.0);
        assert!(tg.neighbors(VertexId(4)).is_empty());
    }

    #[test]
    fn empty_trajectory_set_gives_empty_graph() {
        let net = line(3);
        let tg = TrajectoryGraph::build(&net, &[]);
        assert_eq!(tg.num_vertices(), 0);
        assert_eq!(tg.num_edges(), 0);
        assert_eq!(tg.total_popularity(), 0.0);
    }
}
