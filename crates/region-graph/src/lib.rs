//! # l2r-region-graph
//!
//! Step 1 of the learn-to-route pipeline (Section IV of the paper): turning a
//! road network and a set of map-matched trajectories into a **region
//! graph**.
//!
//! * [`trajectory_graph`] — the sub-graph traversed by trajectories with
//!   popularity annotations;
//! * [`clustering`] — the modularity-based, road-type-constrained bottom-up
//!   clustering of Algorithm 1;
//! * [`region`] — regions with geometric and functional descriptors;
//! * [`region_graph`] — the region graph with T-edges (trajectory-backed,
//!   carrying observed paths, transfer centers and inner-region paths) and
//!   B-edges (BFS connectivity edges, paths assigned later);
//! * [`hull`] — the Table IV region-size statistics.

#![warn(missing_docs)]

pub mod clustering;
pub mod codec;
pub mod hull;
pub mod region;
pub mod region_graph;
pub mod trajectory_graph;

pub use clustering::{bottom_up_clustering, modularity_gain, Cluster};
pub use codec::{decode_region_graph, decode_supported_path};
pub use hull::{d1_bounds_km2, d2_bounds_km2, region_size_distribution, RegionSizeBucket};
pub use region::{region_function, Region, RegionId};
pub use region_graph::{RegionEdge, RegionEdgeId, RegionEdgeKind, RegionGraph, SupportedPath};
pub use trajectory_graph::{undirected, TrajectoryGraph, UndirectedEdge};
