//! Snapshot codec for the region-graph layer.
//!
//! Encodes regions, region edges (with T/B classification and attached
//! paths), inner-region paths and transfer centers in the wire format of
//! [`l2r_road_network::codec`].  Region and edge ids equal their table
//! indexes and are not written; derived lookup structures (adjacency lists,
//! the vertex→region map, the edge-pair lookup) are rebuilt on decode by the
//! same insertion order the builder uses, so a decoded graph is structurally
//! identical to the original.
//!
//! Decoding validates every embedded id — vertex ids against the road
//! network the graph is being attached to, region ids against the decoded
//! region count — and every stored path's drivability, so a corrupt (or
//! crafted, checksum-valid) payload errors at load time instead of
//! panicking later on the query path.

use l2r_road_network::{
    decode_path, decode_vertex, CodecError, Decode, Encode, Reader, RoadNetwork, RoadType,
    RoadTypeSet, VertexId, Writer,
};

use crate::region::{Region, RegionId};
use crate::region_graph::{RegionEdge, RegionEdgeId, RegionEdgeKind, RegionGraph, SupportedPath};

impl Encode for SupportedPath {
    fn encode(&self, w: &mut Writer) {
        self.path.encode(w);
        w.length(self.support);
    }
}

/// Decodes a supported path, validating vertex ids against `net` and the
/// path's drivability (every consecutive pair connected by an edge): the
/// router debug-asserts drivability at query time, so a checksum-valid but
/// crafted snapshot must be rejected here, not panic there.
pub fn decode_supported_path(
    r: &mut Reader<'_>,
    net: &RoadNetwork,
) -> Result<SupportedPath, CodecError> {
    let path = decode_path(r, net.num_vertices())?;
    if path.validate(net).is_err() {
        return Err(CodecError::Invalid("undrivable stored path"));
    }
    let support = r.u64("path support")? as usize;
    Ok(SupportedPath { path, support })
}

fn decode_supported_paths(
    r: &mut Reader<'_>,
    net: &RoadNetwork,
) -> Result<Vec<SupportedPath>, CodecError> {
    let len = r.length("supported path count", 16)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(decode_supported_path(r, net)?);
    }
    Ok(out)
}

fn decode_vertex_list(
    r: &mut Reader<'_>,
    num_vertices: usize,
    what: &'static str,
) -> Result<Vec<VertexId>, CodecError> {
    let len = r.length(what, 4)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(decode_vertex(r, num_vertices)?);
    }
    Ok(out)
}

impl Encode for Region {
    fn encode(&self, w: &mut Writer) {
        w.length(self.vertices.len());
        for v in &self.vertices {
            w.u32(v.0);
        }
        w.f64(self.popularity);
        match self.road_type {
            Some(rt) => {
                w.bool(true);
                rt.encode(w);
            }
            None => w.bool(false),
        }
        self.centroid.encode(w);
        w.f64(self.hull_area_m2);
        w.f64(self.diameter_m);
        self.function.encode(w);
    }
}

/// Decodes a region (descriptors are stored, not recomputed, so the
/// round-trip is bit-exact); `id` is the region's table index.
pub fn decode_region(
    r: &mut Reader<'_>,
    id: RegionId,
    num_vertices: usize,
) -> Result<Region, CodecError> {
    let vertices = decode_vertex_list(r, num_vertices, "region vertex count")?;
    let popularity = r.f64("region popularity")?;
    let road_type = if r.bool("region road type flag")? {
        Some(RoadType::decode(r)?)
    } else {
        None
    };
    let centroid = l2r_road_network::Point::decode(r)?;
    let hull_area_m2 = r.f64("region hull area")?;
    let diameter_m = r.f64("region diameter")?;
    let function = RoadTypeSet::decode(r)?;
    Ok(Region {
        id,
        vertices,
        popularity,
        road_type,
        centroid,
        hull_area_m2,
        diameter_m,
        function,
    })
}

impl Encode for RegionEdgeKind {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            RegionEdgeKind::TEdge => 0,
            RegionEdgeKind::BEdge => 1,
        });
    }
}

impl Decode for RegionEdgeKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8("region edge kind")? {
            0 => Ok(RegionEdgeKind::TEdge),
            1 => Ok(RegionEdgeKind::BEdge),
            _ => Err(CodecError::Invalid("unknown region edge kind")),
        }
    }
}

impl Encode for RegionEdge {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.a.0);
        w.u32(self.b.0);
        self.kind.encode(w);
        w.seq(&self.paths);
    }
}

/// Decodes a region edge; `id` is the edge's table index, endpoints are
/// validated against `num_regions` and attached paths against `net`.
pub fn decode_region_edge(
    r: &mut Reader<'_>,
    id: RegionEdgeId,
    num_regions: usize,
    net: &RoadNetwork,
) -> Result<RegionEdge, CodecError> {
    let a = RegionId(r.index("region edge endpoint", num_regions)?);
    let b = RegionId(r.index("region edge endpoint", num_regions)?);
    if a >= b {
        // Edges are stored undirected with canonicalised endpoints `a < b`
        // (equal endpoints would be a self-loop, which the builder never
        // creates).
        return Err(CodecError::Invalid("region edge endpoints not canonical"));
    }
    let kind = RegionEdgeKind::decode(r)?;
    let paths = decode_supported_paths(r, net)?;
    Ok(RegionEdge {
        id,
        a,
        b,
        kind,
        paths,
    })
}

impl Encode for RegionGraph {
    fn encode(&self, w: &mut Writer) {
        w.seq(&self.regions);
        w.seq(&self.edges);
        // The per-region lists piggyback on the region count written above.
        for paths in &self.inner_paths {
            w.seq(paths);
        }
        for centers in &self.transfer_centers {
            w.length(centers.len());
            for v in centers {
                w.u32(v.0);
            }
        }
        for centers in &self.fallback_centers {
            w.length(centers.len());
            for v in centers {
                w.u32(v.0);
            }
        }
    }
}

/// Decodes a region graph against the road network it belongs to.
///
/// Every vertex id is validated against `net`, every region id against the
/// decoded region count; the derived adjacency, vertex→region and edge-pair
/// lookups are rebuilt in builder insertion order.
pub fn decode_region_graph(
    r: &mut Reader<'_>,
    net: &RoadNetwork,
) -> Result<RegionGraph, CodecError> {
    let num_vertices = net.num_vertices();

    let num_regions = r.length("region count", 8)?;
    let mut regions = Vec::with_capacity(num_regions);
    for i in 0..num_regions {
        regions.push(decode_region(r, RegionId(i as u32), num_vertices)?);
    }

    let num_edges = r.length("region edge count", 17)?;
    let mut edges = Vec::with_capacity(num_edges);
    for i in 0..num_edges {
        edges.push(decode_region_edge(
            r,
            RegionEdgeId(i as u32),
            num_regions,
            net,
        )?);
    }

    let mut inner_paths = Vec::with_capacity(num_regions);
    for _ in 0..num_regions {
        inner_paths.push(decode_supported_paths(r, net)?);
    }
    let mut transfer_centers = Vec::with_capacity(num_regions);
    for _ in 0..num_regions {
        transfer_centers.push(decode_vertex_list(
            r,
            num_vertices,
            "transfer center count",
        )?);
    }
    let mut fallback_centers = Vec::with_capacity(num_regions);
    for _ in 0..num_regions {
        fallback_centers.push(decode_vertex_list(
            r,
            num_vertices,
            "fallback center count",
        )?);
    }

    // Rebuild the derived lookups exactly as the builder populates them.
    let mut vertex_region = std::collections::HashMap::new();
    for region in &regions {
        for v in &region.vertices {
            if vertex_region.insert(*v, region.id).is_some() {
                return Err(CodecError::Invalid("vertex belongs to two regions"));
            }
        }
    }
    let mut adjacency = vec![Vec::new(); num_regions];
    let mut edge_lookup = std::collections::HashMap::with_capacity(num_edges);
    for edge in &edges {
        if edge_lookup.insert((edge.a, edge.b), edge.id).is_some() {
            return Err(CodecError::Invalid("duplicate region edge"));
        }
        adjacency[edge.a.idx()].push(edge.id);
        adjacency[edge.b.idx()].push(edge.id);
    }

    Ok(RegionGraph {
        regions,
        edges,
        adjacency,
        vertex_region,
        inner_paths,
        transfer_centers,
        fallback_centers,
        edge_lookup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::bottom_up_clustering;
    use crate::trajectory_graph::TrajectoryGraph;
    use l2r_road_network::{Path, Point, RoadNetworkBuilder};
    use l2r_trajectory::{DriverId, MatchedTrajectory, TrajectoryId};

    fn traj(id: u32, vs: Vec<u32>) -> MatchedTrajectory {
        MatchedTrajectory::new(
            TrajectoryId(id),
            DriverId(0),
            Path::new(vs.into_iter().map(VertexId).collect()).unwrap(),
            0.0,
        )
    }

    /// Two popular corridors joined by one trajectory plus an isolated one,
    /// so the graph has T-edges, B-edges, inner paths and fallback centers.
    fn sample() -> (RoadNetwork, RegionGraph) {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..9 {
            b.add_vertex(Point::new(i as f64 * 800.0, (i / 3) as f64 * 500.0));
        }
        for (x, y) in [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (2, 6),
            (6, 7),
            (7, 8),
        ] {
            b.add_two_way(VertexId(x), VertexId(y), RoadType::Primary)
                .unwrap();
        }
        let net = b.build();
        let mut ts = Vec::new();
        for i in 0..8 {
            ts.push(traj(i, vec![0, 1, 2]));
            ts.push(traj(100 + i, vec![3, 4, 5]));
        }
        ts.push(traj(200, vec![1, 2, 3, 4]));
        for i in 0..4 {
            ts.push(traj(300 + i, vec![7, 8]));
        }
        let tg = TrajectoryGraph::build(&net, &ts);
        let clusters = bottom_up_clustering(&tg);
        let rg = RegionGraph::build(&net, &clusters, &ts, 2);
        (net, rg)
    }

    fn encode(rg: &RegionGraph) -> Vec<u8> {
        let mut w = Writer::new();
        rg.encode(&mut w);
        w.into_vec()
    }

    #[test]
    fn region_graph_roundtrips_bit_identically() {
        let (net, rg) = sample();
        let bytes = encode(&rg);
        let mut r = Reader::new(&bytes);
        let decoded = decode_region_graph(&mut r, &net).unwrap();
        assert!(r.is_exhausted());

        assert_eq!(decoded.num_regions(), rg.num_regions());
        assert_eq!(decoded.num_edges(), rg.num_edges());
        for (a, b) in rg.regions().iter().zip(decoded.regions()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.vertices, b.vertices);
            assert_eq!(a.popularity.to_bits(), b.popularity.to_bits());
            assert_eq!(a.road_type, b.road_type);
            assert_eq!(a.centroid, b.centroid);
            assert_eq!(a.hull_area_m2.to_bits(), b.hull_area_m2.to_bits());
            assert_eq!(a.diameter_m.to_bits(), b.diameter_m.to_bits());
            assert_eq!(a.function, b.function);
        }
        for (a, b) in rg.edges().iter().zip(decoded.edges()) {
            assert_eq!(a.id, b.id);
            assert_eq!((a.a, a.b, a.kind), (b.a, b.b, b.kind));
            assert_eq!(a.paths, b.paths);
        }
        for region in rg.regions() {
            assert_eq!(rg.inner_paths(region.id), decoded.inner_paths(region.id));
            assert_eq!(
                rg.transfer_centers(region.id),
                decoded.transfer_centers(region.id)
            );
            assert_eq!(
                rg.transfer_centers_or_default(region.id),
                decoded.transfer_centers_or_default(region.id)
            );
            assert_eq!(
                rg.adjacent_edges(region.id),
                decoded.adjacent_edges(region.id)
            );
        }
        for v in 0..net.num_vertices() as u32 {
            assert_eq!(rg.region_of(VertexId(v)), decoded.region_of(VertexId(v)));
        }
        // Re-encoding reproduces the exact bytes.
        assert_eq!(encode(&decoded), bytes);
    }

    #[test]
    fn decode_validates_vertex_ids_against_the_network() {
        let (net, rg) = sample();
        // A network with fewer vertices makes the stored ids out of range.
        let mut b = RoadNetworkBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(100.0, 0.0));
        b.add_two_way(VertexId(0), VertexId(1), RoadType::Primary)
            .unwrap();
        let tiny = b.build();
        assert!(tiny.num_vertices() < net.num_vertices());
        let bytes = encode(&rg);
        assert!(matches!(
            decode_region_graph(&mut Reader::new(&bytes), &tiny),
            Err(CodecError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn decode_rejects_out_of_range_transfer_centers() {
        let (net, mut rg) = sample();
        rg.transfer_centers[0].push(VertexId(net.num_vertices() as u32 + 7));
        let bytes = encode(&rg);
        assert!(matches!(
            decode_region_graph(&mut Reader::new(&bytes), &net),
            Err(CodecError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn decode_rejects_out_of_range_region_ids_and_non_canonical_edges() {
        let (net, rg) = sample();
        {
            let mut bad = rg.clone();
            bad.edges[0].b = RegionId(bad.num_regions() as u32 + 3);
            let bytes = encode(&bad);
            assert!(matches!(
                decode_region_graph(&mut Reader::new(&bytes), &net),
                Err(CodecError::IndexOutOfRange { .. })
            ));
        }
        {
            let mut bad = rg.clone();
            let (a, b) = (bad.edges[0].a, bad.edges[0].b);
            bad.edges[0].a = b;
            bad.edges[0].b = a;
            let bytes = encode(&bad);
            assert!(matches!(
                decode_region_graph(&mut Reader::new(&bytes), &net),
                Err(CodecError::Invalid(_))
            ));
        }
    }

    #[test]
    fn decode_rejects_out_of_range_path_vertices() {
        let (net, mut rg) = sample();
        let edge_with_paths = rg
            .edges
            .iter()
            .position(|e| !e.paths.is_empty())
            .expect("sample has T-edges with paths");
        rg.edges[edge_with_paths].paths.push(SupportedPath {
            path: Path::new(vec![VertexId(0), VertexId(net.num_vertices() as u32)]).unwrap(),
            support: 1,
        });
        let bytes = encode(&rg);
        assert!(matches!(
            decode_region_graph(&mut Reader::new(&bytes), &net),
            Err(CodecError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn decode_rejects_undrivable_paths() {
        let (net, mut rg) = sample();
        let edge_with_paths = rg
            .edges
            .iter()
            .position(|e| !e.paths.is_empty())
            .expect("sample has T-edges with paths");
        // Vertices 0 and 5 exist but are not adjacent: in range, undrivable.
        assert!(net.edge_between(VertexId(0), VertexId(5)).is_none());
        rg.edges[edge_with_paths].paths.push(SupportedPath {
            path: Path::new(vec![VertexId(0), VertexId(5)]).unwrap(),
            support: 1,
        });
        let bytes = encode(&rg);
        assert!(matches!(
            decode_region_graph(&mut Reader::new(&bytes), &net),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn decode_rejects_truncated_buffers() {
        let (net, rg) = sample();
        let bytes = encode(&rg);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_region_graph(&mut Reader::new(&bytes[..cut]), &net).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn empty_region_graph_roundtrips() {
        let net = RoadNetworkBuilder::new().build();
        let rg = RegionGraph::build(&net, &[], &[], 2);
        let bytes = encode(&rg);
        let decoded = decode_region_graph(&mut Reader::new(&bytes), &net).unwrap();
        assert_eq!(decoded.num_regions(), 0);
        assert_eq!(decoded.num_edges(), 0);
    }
}
