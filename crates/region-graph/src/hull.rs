//! Region size statistics (Table IV of the paper): bucketed convex-hull
//! areas and the maximum region diameter per bucket.

use crate::region::Region;

/// One row of the Table IV report: an area bucket with its count, share and
/// the maximum diameter observed inside the bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSizeBucket {
    /// Lower area bound (exclusive), km².
    pub lo_km2: f64,
    /// Upper area bound (inclusive), km²; `f64::INFINITY` for the last bucket.
    pub hi_km2: f64,
    /// Number of regions in the bucket.
    pub count: usize,
    /// Share of all regions, 0–100.
    pub percentage: f64,
    /// Maximum hull diameter among the bucket's regions, km.
    pub max_diameter_km: f64,
}

/// Computes the region-size distribution over the given area bucket bounds
/// (km², ascending).  A final open bucket (`> last bound`) is added
/// automatically.
pub fn region_size_distribution(regions: &[Region], bounds_km2: &[f64]) -> Vec<RegionSizeBucket> {
    let total = regions.len().max(1) as f64;
    let mut buckets: Vec<RegionSizeBucket> = Vec::with_capacity(bounds_km2.len() + 1);
    let mut lo = 0.0;
    for &hi in bounds_km2 {
        buckets.push(RegionSizeBucket {
            lo_km2: lo,
            hi_km2: hi,
            count: 0,
            percentage: 0.0,
            max_diameter_km: 0.0,
        });
        lo = hi;
    }
    buckets.push(RegionSizeBucket {
        lo_km2: lo,
        hi_km2: f64::INFINITY,
        count: 0,
        percentage: 0.0,
        max_diameter_km: 0.0,
    });
    for r in regions {
        let area = r.hull_area_km2();
        let idx = buckets
            .iter()
            .position(|b| area > b.lo_km2 && area <= b.hi_km2)
            .unwrap_or(0); // zero-area (single-vertex) regions land in the first bucket
        buckets[idx].count += 1;
        buckets[idx].max_diameter_km = buckets[idx].max_diameter_km.max(r.diameter_km());
    }
    for b in &mut buckets {
        b.percentage = b.count as f64 / total * 100.0;
    }
    buckets
}

/// The bucket bounds used for the D1 (Denmark) report in Table IV (km²).
pub fn d1_bounds_km2() -> Vec<f64> {
    vec![2.0, 10.0, 100.0]
}

/// The bucket bounds used for the D2 (Chengdu) report in Table IV (km²).
pub fn d2_bounds_km2() -> Vec<f64> {
    vec![2.0, 5.0, 10.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionId;
    use l2r_road_network::{Point, RoadNetworkBuilder, RoadType, VertexId};

    fn region_with_square(id: u32, side_m: f64) -> Region {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(side_m, 0.0));
        let v2 = b.add_vertex(Point::new(side_m, side_m));
        let v3 = b.add_vertex(Point::new(0.0, side_m));
        b.add_two_way(v0, v1, RoadType::Primary).unwrap();
        b.add_two_way(v1, v2, RoadType::Primary).unwrap();
        b.add_two_way(v2, v3, RoadType::Primary).unwrap();
        b.add_two_way(v3, v0, RoadType::Primary).unwrap();
        let net = b.build();
        Region::build(
            RegionId(id),
            &net,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)],
            1.0,
            Some(RoadType::Primary),
            2,
        )
    }

    #[test]
    fn buckets_cover_all_regions_and_percentages_sum_to_100() {
        let regions = vec![
            region_with_square(0, 1000.0),  // 1 km²
            region_with_square(1, 1000.0),  // 1 km²
            region_with_square(2, 2500.0),  // 6.25 km²
            region_with_square(3, 12000.0), // 144 km²
        ];
        let buckets = region_size_distribution(&regions, &d1_bounds_km2());
        assert_eq!(buckets.len(), 4);
        let total: usize = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, regions.len());
        let pct: f64 = buckets.iter().map(|b| b.percentage).sum();
        assert!((pct - 100.0).abs() < 1e-9);
        // The two 1 km² regions are in the first bucket.
        assert_eq!(buckets[0].count, 2);
        assert_eq!(buckets[1].count, 1);
        assert_eq!(buckets[3].count, 1);
        // Max diameter grows with the bucket.
        assert!(buckets[3].max_diameter_km > buckets[0].max_diameter_km);
    }

    #[test]
    fn empty_region_list() {
        let buckets = region_size_distribution(&[], &d2_bounds_km2());
        assert_eq!(buckets.len(), 4);
        assert!(buckets.iter().all(|b| b.count == 0));
    }
}
