//! Map-matched trajectories: the paper works exclusively on trajectories that
//! have been aligned with the road-network path they traversed.

use l2r_road_network::{CostType, NetworkError, Path, RoadNetwork};

use crate::gps::{DriverId, TrajectoryId};

/// A trajectory after map matching: the road-network path the vehicle
/// traversed, plus the metadata needed by the evaluation (driver, departure
/// time).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedTrajectory {
    /// Original trajectory id.
    pub id: TrajectoryId,
    /// The driver who produced the trajectory.
    pub driver: DriverId,
    /// The traversed road-network path.
    pub path: Path,
    /// Departure time in seconds since the data set epoch.
    pub departure_time_s: f64,
}

impl MatchedTrajectory {
    /// Creates a matched trajectory.
    pub fn new(id: TrajectoryId, driver: DriverId, path: Path, departure_time_s: f64) -> Self {
        MatchedTrajectory {
            id,
            driver,
            path,
            departure_time_s,
        }
    }

    /// Travelled distance in metres.
    pub fn distance_m(&self, net: &RoadNetwork) -> Result<f64, NetworkError> {
        self.path.length_m(net)
    }

    /// Travelled distance in kilometres.
    pub fn distance_km(&self, net: &RoadNetwork) -> Result<f64, NetworkError> {
        Ok(self.path.length_m(net)? / 1000.0)
    }

    /// Free-flow travel time of the traversed path, in seconds.
    pub fn travel_time_s(&self, net: &RoadNetwork) -> Result<f64, NetworkError> {
        self.path.cost(net, CostType::TravelTime)
    }

    /// Source vertex.
    pub fn source(&self) -> l2r_road_network::VertexId {
        self.path.source()
    }

    /// Destination vertex.
    pub fn destination(&self) -> l2r_road_network::VertexId {
        self.path.destination()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_road_network::{Point, RoadNetworkBuilder, RoadType, VertexId};

    fn tiny() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1000.0, 0.0));
        let v2 = b.add_vertex(Point::new(2000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Primary).unwrap();
        b.add_two_way(v1, v2, RoadType::Primary).unwrap();
        b.build()
    }

    #[test]
    fn matched_trajectory_costs() {
        let net = tiny();
        let path = Path::new(vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        let mt = MatchedTrajectory::new(TrajectoryId(0), DriverId(1), path, 3600.0);
        assert!((mt.distance_m(&net).unwrap() - 2000.0).abs() < 1e-9);
        assert!((mt.distance_km(&net).unwrap() - 2.0).abs() < 1e-9);
        assert!(mt.travel_time_s(&net).unwrap() > 0.0);
        assert_eq!(mt.source(), VertexId(0));
        assert_eq!(mt.destination(), VertexId(2));
    }
}
