//! Trajectory statistics: the travel-distance distribution of Table II and
//! sampling-rate summaries used to sanity check generated workloads.

use l2r_road_network::{NetworkError, RoadNetwork};

use crate::matched::MatchedTrajectory;

/// A histogram over travel distances, with the bucket boundaries expressed in
/// kilometres (right-inclusive, as in Table II of the paper: `(0,10]`,
/// `(10,50]`, …).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceDistribution {
    /// Upper bounds of each bucket, in km, ascending.  A final implicit
    /// bucket catches everything larger than the last bound.
    pub bounds_km: Vec<f64>,
    /// Number of trajectories in each bucket (`bounds_km.len() + 1` entries).
    pub counts: Vec<usize>,
}

impl DistanceDistribution {
    /// Bucket boundaries used for the D1 (Denmark-like) data set in Table II.
    pub fn d1_bounds() -> Vec<f64> {
        vec![10.0, 50.0, 100.0, 500.0]
    }

    /// Bucket boundaries used for the D2 (Chengdu-like) data set in Table II.
    pub fn d2_bounds() -> Vec<f64> {
        vec![2.0, 5.0, 10.0, 35.0]
    }

    /// Builds the distribution of `trajectories` over the given bounds.
    pub fn compute(
        net: &RoadNetwork,
        trajectories: &[MatchedTrajectory],
        bounds_km: Vec<f64>,
    ) -> Result<Self, NetworkError> {
        let mut counts = vec![0usize; bounds_km.len() + 1];
        for t in trajectories {
            let km = t.distance_km(net)?;
            let idx = bounds_km
                .iter()
                .position(|b| km <= *b)
                .unwrap_or(bounds_km.len());
            counts[idx] += 1;
        }
        Ok(DistanceDistribution { bounds_km, counts })
    }

    /// Total number of trajectories.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Percentage (0–100) of trajectories per bucket.
    pub fn percentages(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts
            .iter()
            .map(|c| *c as f64 / total * 100.0)
            .collect()
    }

    /// Human-readable labels of the buckets, e.g. `(0,10]`, `(10,50]`, `>500`.
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::with_capacity(self.counts.len());
        let mut lo = 0.0;
        for b in &self.bounds_km {
            labels.push(format!("({:.0},{:.0}]", lo, b));
            lo = *b;
        }
        labels.push(format!(">{:.0}", lo));
        labels
    }
}

/// Summary of sampling behaviour of raw trajectories (mean interval and
/// record counts); used to verify that the D1/D2 presets differ as intended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingSummary {
    /// Number of trajectories summarised.
    pub trajectories: usize,
    /// Total number of GPS records.
    pub records: usize,
    /// Mean sampling interval across trajectories, in seconds.
    pub mean_interval_s: f64,
}

/// Computes a [`SamplingSummary`] over raw trajectories.
pub fn sampling_summary(trajectories: &[crate::gps::Trajectory]) -> SamplingSummary {
    let mut records = 0usize;
    let mut interval_sum = 0.0;
    let mut interval_count = 0usize;
    for t in trajectories {
        records += t.len();
        if let Some(i) = t.mean_sampling_interval_s() {
            interval_sum += i;
            interval_count += 1;
        }
    }
    SamplingSummary {
        trajectories: trajectories.len(),
        records,
        mean_interval_s: if interval_count > 0 {
            interval_sum / interval_count as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gps::{DriverId, GpsRecord, Trajectory, TrajectoryId};
    use l2r_road_network::{Path, Point, RoadNetworkBuilder, RoadType, VertexId};

    fn line(n: usize, spacing: f64) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let vs: Vec<VertexId> = (0..n)
            .map(|i| b.add_vertex(Point::new(i as f64 * spacing, 0.0)))
            .collect();
        for w in vs.windows(2) {
            b.add_two_way(w[0], w[1], RoadType::Secondary).unwrap();
        }
        b.build()
    }

    fn matched(net: &RoadNetwork, from: u32, to: u32) -> MatchedTrajectory {
        let path = Path::new((from..=to).map(VertexId).collect()).unwrap();
        let _ = net;
        MatchedTrajectory::new(TrajectoryId(from), DriverId(0), path, 0.0)
    }

    #[test]
    fn distance_distribution_buckets() {
        // 11 vertices spaced 1 km apart: paths of 1..10 km are possible.
        let net = line(11, 1000.0);
        let ts = vec![
            matched(&net, 0, 1),  // 1 km
            matched(&net, 0, 3),  // 3 km
            matched(&net, 0, 10), // 10 km (right-inclusive in first bucket for d2 bounds? 10 <= 10)
        ];
        let dist =
            DistanceDistribution::compute(&net, &ts, DistanceDistribution::d2_bounds()).unwrap();
        assert_eq!(dist.total(), 3);
        // Buckets: (0,2], (2,5], (5,10], (10,35], >35
        assert_eq!(dist.counts, vec![1, 1, 1, 0, 0]);
        let pct = dist.percentages();
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        let labels = dist.labels();
        assert_eq!(labels.len(), 5);
        assert_eq!(labels[0], "(0,2]");
        assert_eq!(labels[4], ">35");
    }

    #[test]
    fn overflow_bucket_catches_long_trips() {
        let net = line(41, 1000.0);
        let ts = vec![matched(&net, 0, 40)]; // 40 km
        let dist =
            DistanceDistribution::compute(&net, &ts, DistanceDistribution::d2_bounds()).unwrap();
        assert_eq!(dist.counts.last().copied(), Some(1));
    }

    #[test]
    fn sampling_summary_means() {
        let t1 = Trajectory::new(
            TrajectoryId(0),
            DriverId(0),
            vec![
                GpsRecord::new(Point::new(0.0, 0.0), 0.0),
                GpsRecord::new(Point::new(10.0, 0.0), 1.0),
                GpsRecord::new(Point::new(20.0, 0.0), 2.0),
            ],
        );
        let t2 = Trajectory::new(
            TrajectoryId(1),
            DriverId(0),
            vec![
                GpsRecord::new(Point::new(0.0, 0.0), 0.0),
                GpsRecord::new(Point::new(10.0, 0.0), 15.0),
            ],
        );
        let s = sampling_summary(&[t1, t2]);
        assert_eq!(s.trajectories, 2);
        assert_eq!(s.records, 5);
        assert!((s.mean_interval_s - 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let net = line(2, 100.0);
        let dist =
            DistanceDistribution::compute(&net, &[], DistanceDistribution::d1_bounds()).unwrap();
        assert_eq!(dist.total(), 0);
        assert!(dist.percentages().iter().all(|p| *p == 0.0));
        let s = sampling_summary(&[]);
        assert_eq!(s.trajectories, 0);
        assert_eq!(s.mean_interval_s, 0.0);
    }
}
