//! GPS records and raw trajectories (Section III of the paper).

use l2r_road_network::Point;

/// Identifier of a trajectory within a data set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrajectoryId(pub u32);

/// Identifier of a driver / vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DriverId(pub u32);

/// A single GPS fix: a position at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsRecord {
    /// Position in the planar frame (metres).
    pub point: Point,
    /// Timestamp in seconds since the data set epoch.
    pub timestamp_s: f64,
}

impl GpsRecord {
    /// Creates a record.
    pub fn new(point: Point, timestamp_s: f64) -> Self {
        GpsRecord { point, timestamp_s }
    }
}

/// A raw trajectory: a time-ordered sequence of GPS records from one driver.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// The trajectory id.
    pub id: TrajectoryId,
    /// The driver who produced the trajectory.
    pub driver: DriverId,
    /// GPS records ordered by timestamp.
    pub records: Vec<GpsRecord>,
}

impl Trajectory {
    /// Creates a trajectory; records are sorted by timestamp.
    pub fn new(id: TrajectoryId, driver: DriverId, mut records: Vec<GpsRecord>) -> Self {
        records.sort_by(|a, b| a.timestamp_s.total_cmp(&b.timestamp_s));
        Trajectory {
            id,
            driver,
            records,
        }
    }

    /// Number of GPS records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trajectory has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Departure time (timestamp of the first record), if any.
    pub fn departure_time_s(&self) -> Option<f64> {
        self.records.first().map(|r| r.timestamp_s)
    }

    /// Total duration in seconds (0 for fewer than two records).
    pub fn duration_s(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => (b.timestamp_s - a.timestamp_s).max(0.0),
            _ => 0.0,
        }
    }

    /// Sum of straight-line distances between consecutive records, in metres.
    /// An approximation of travelled distance used for sanity checks and
    /// sampling-rate statistics.
    pub fn polyline_length_m(&self) -> f64 {
        self.records
            .windows(2)
            .map(|w| w[0].point.distance(&w[1].point))
            .sum()
    }

    /// Mean interval between consecutive records in seconds
    /// (`None` for fewer than two records).
    pub fn mean_sampling_interval_s(&self) -> Option<f64> {
        if self.records.len() < 2 {
            return None;
        }
        Some(self.duration_s() / (self.records.len() - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(x: f64, t: f64) -> GpsRecord {
        GpsRecord::new(Point::new(x, 0.0), t)
    }

    #[test]
    fn records_are_sorted_by_time() {
        let t = Trajectory::new(
            TrajectoryId(0),
            DriverId(0),
            vec![rec(2.0, 20.0), rec(0.0, 0.0), rec(1.0, 10.0)],
        );
        let times: Vec<f64> = t.records.iter().map(|r| r.timestamp_s).collect();
        assert_eq!(times, vec![0.0, 10.0, 20.0]);
        assert_eq!(t.departure_time_s(), Some(0.0));
        assert_eq!(t.duration_s(), 20.0);
    }

    #[test]
    fn lengths_and_intervals() {
        let t = Trajectory::new(
            TrajectoryId(1),
            DriverId(3),
            vec![rec(0.0, 0.0), rec(100.0, 10.0), rec(300.0, 30.0)],
        );
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!((t.polyline_length_m() - 300.0).abs() < 1e-9);
        assert!((t.mean_sampling_interval_s().unwrap() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trajectory() {
        let t = Trajectory::new(TrajectoryId(2), DriverId(0), vec![]);
        assert!(t.is_empty());
        assert_eq!(t.departure_time_s(), None);
        assert_eq!(t.duration_s(), 0.0);
        assert_eq!(t.mean_sampling_interval_s(), None);
    }
}
