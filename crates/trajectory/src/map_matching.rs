//! Hidden-Markov-model map matching (the paper's reference \[29\],
//! Newson & Krumm 2009), reimplemented from scratch.
//!
//! Each GPS record is associated with candidate vertices within a search
//! radius.  Emission probabilities model GPS noise (Gaussian in the distance
//! between the fix and the candidate); transition probabilities penalise the
//! difference between the on-network distance implied by consecutive
//! candidates and the great-circle (here: Euclidean) displacement of the two
//! fixes.  Viterbi decoding picks the most likely candidate sequence, which
//! is then stitched into a connected road-network path with shortest-path
//! segments between consecutive matched vertices.

use l2r_road_network::{fastest_path, CostType, GridIndex, Path, RoadNetwork, VertexId};

use crate::gps::Trajectory;
use crate::matched::MatchedTrajectory;

/// Configuration of the HMM map matcher.
#[derive(Debug, Clone, Copy)]
pub struct MapMatcherConfig {
    /// Radius (metres) around each GPS fix in which candidate vertices are
    /// collected.
    pub candidate_radius_m: f64,
    /// Standard deviation of GPS noise used by the emission model (metres).
    pub sigma_z_m: f64,
    /// Scale of the exponential transition model (metres).
    pub beta_m: f64,
    /// Maximum number of candidates kept per GPS fix.
    pub max_candidates: usize,
    /// Fixes are skipped so that consecutive processed fixes are at least
    /// this far apart (metres); 0 processes every fix.  High-frequency traces
    /// carry redundant fixes that only slow matching down.
    pub min_fix_spacing_m: f64,
}

impl Default for MapMatcherConfig {
    fn default() -> Self {
        MapMatcherConfig {
            candidate_radius_m: 120.0,
            sigma_z_m: 10.0,
            beta_m: 250.0,
            max_candidates: 6,
            min_fix_spacing_m: 40.0,
        }
    }
}

/// An HMM map matcher bound to a road network.
pub struct MapMatcher<'a> {
    net: &'a RoadNetwork,
    config: MapMatcherConfig,
    vertex_grid: GridIndex,
}

impl<'a> MapMatcher<'a> {
    /// Builds a matcher (and its spatial index) for `net`.
    ///
    /// The index cell size is derived from vertex density (so candidate
    /// lists stay short on dense, country-scale networks) but never drops
    /// below half the candidate radius (so a query touches O(1) cells).
    /// Candidates are exact-filtered by radius afterwards, so the cell size
    /// affects only performance, never matching output.
    pub fn new(net: &'a RoadNetwork, config: MapMatcherConfig) -> Self {
        let density =
            l2r_road_network::density_cell_size(net.bounding_box(), net.num_vertices(), 4.0);
        let cell = density.max((config.candidate_radius_m / 2.0).max(25.0));
        MapMatcher {
            net,
            config,
            vertex_grid: net.vertex_index(cell),
        }
    }

    /// Builds a matcher with the default configuration.
    pub fn with_defaults(net: &'a RoadNetwork) -> Self {
        Self::new(net, MapMatcherConfig::default())
    }

    /// Candidate vertices for a GPS fix, sorted by `(distance, vertex)`,
    /// capped at `max_candidates`.
    ///
    /// The grid may report the same vertex more than once; sorting by
    /// distance *alone* would let an equal-distance neighbour interleave
    /// between two copies, so the adjacent-only `dedup_by_key` could leak a
    /// duplicate candidate into Viterbi.  The vertex-id tie-break keeps
    /// copies adjacent (and makes the candidate order fully deterministic).
    fn candidates(&self, p: &l2r_road_network::Point) -> Vec<(VertexId, f64)> {
        let mut cands: Vec<(VertexId, f64)> = self
            .vertex_grid
            .query(p, self.config.candidate_radius_m)
            .into_iter()
            .map(VertexId)
            .map(|v| (v, self.net.vertex(v).point.distance(p)))
            .filter(|(_, d)| *d <= self.config.candidate_radius_m)
            .collect();
        cands.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        cands.dedup_by_key(|(v, _)| *v);
        cands.truncate(self.config.max_candidates);
        cands
    }

    /// Negative log emission probability of observing a fix `dist_m` away
    /// from a candidate.
    fn emission_cost(&self, dist_m: f64) -> f64 {
        let s = self.config.sigma_z_m.max(1e-3);
        0.5 * (dist_m / s) * (dist_m / s)
    }

    /// Negative log transition probability between two candidates given the
    /// Euclidean displacement of the fixes.
    fn transition_cost(&self, from: VertexId, to: VertexId, gps_displacement_m: f64) -> f64 {
        let net_dist = self.net.euclidean(from, to);
        let diff = (net_dist - gps_displacement_m).abs();
        diff / self.config.beta_m.max(1e-3)
    }

    /// Matches a raw trajectory onto a connected road-network path.
    ///
    /// Returns `None` when the trajectory has fewer than two fixes with
    /// candidates, or when the matched vertices cannot be connected in the
    /// network.
    pub fn match_trajectory(&self, traj: &Trajectory) -> Option<MatchedTrajectory> {
        if traj.len() < 2 {
            return None;
        }
        // Down-sample fixes for efficiency on high-frequency traces.
        let mut fixes: Vec<&crate::gps::GpsRecord> = Vec::new();
        for r in &traj.records {
            if let Some(last) = fixes.last() {
                if last.point.distance(&r.point) < self.config.min_fix_spacing_m {
                    continue;
                }
            }
            fixes.push(r);
        }
        if let (Some(first), Some(last)) = (traj.records.first(), traj.records.last()) {
            if fixes.last().map(|r| r.timestamp_s) != Some(last.timestamp_s) {
                fixes.push(last);
            }
            if fixes.first().map(|r| r.timestamp_s) != Some(first.timestamp_s) {
                fixes.insert(0, first);
            }
        }
        if fixes.len() < 2 {
            return None;
        }

        // Candidate sets per fix; fixes without any candidate are dropped.
        let mut states: Vec<(usize, Vec<(VertexId, f64)>)> = Vec::new();
        for (i, f) in fixes.iter().enumerate() {
            let c = self.candidates(&f.point);
            if !c.is_empty() {
                states.push((i, c));
            }
        }
        if states.len() < 2 {
            return None;
        }

        // Viterbi over negative log probabilities.
        let mut cost: Vec<Vec<f64>> = Vec::with_capacity(states.len());
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(states.len());
        cost.push(
            states[0]
                .1
                .iter()
                .map(|(_, d)| self.emission_cost(*d))
                .collect(),
        );
        back.push(vec![0; states[0].1.len()]);
        for t in 1..states.len() {
            let (prev_fix_idx, prev_cands) = &states[t - 1];
            let (cur_fix_idx, cur_cands) = &states[t];
            let displacement = fixes[*prev_fix_idx]
                .point
                .distance(&fixes[*cur_fix_idx].point);
            let mut row_cost = vec![f64::INFINITY; cur_cands.len()];
            let mut row_back = vec![0usize; cur_cands.len()];
            for (j, (vj, dj)) in cur_cands.iter().enumerate() {
                let em = self.emission_cost(*dj);
                for (i, (vi, _)) in prev_cands.iter().enumerate() {
                    let c = cost[t - 1][i] + self.transition_cost(*vi, *vj, displacement) + em;
                    if c < row_cost[j] {
                        row_cost[j] = c;
                        row_back[j] = i;
                    }
                }
            }
            cost.push(row_cost);
            back.push(row_back);
        }

        // Backtrack the best state sequence.
        let last_row = cost.last()?;
        let mut best_j = 0usize;
        let mut best_c = f64::INFINITY;
        for (j, c) in last_row.iter().enumerate() {
            if *c < best_c {
                best_c = *c;
                best_j = j;
            }
        }
        if !best_c.is_finite() {
            return None;
        }
        let mut seq_rev = Vec::with_capacity(states.len());
        let mut j = best_j;
        for t in (0..states.len()).rev() {
            seq_rev.push(states[t].1[j].0);
            j = back[t][j];
        }
        seq_rev.reverse();

        // Collapse consecutive duplicates and stitch with shortest paths.
        let mut matched_vertices: Vec<VertexId> = Vec::new();
        for v in seq_rev {
            if matched_vertices.last() != Some(&v) {
                matched_vertices.push(v);
            }
        }
        if matched_vertices.is_empty() {
            return None;
        }
        if matched_vertices.len() == 1 {
            return Some(MatchedTrajectory::new(
                traj.id,
                traj.driver,
                Path::single(matched_vertices[0]),
                traj.departure_time_s().unwrap_or(0.0),
            ));
        }
        let mut full: Option<Path> = None;
        for w in matched_vertices.windows(2) {
            let segment = if self.net.edge_between(w[0], w[1]).is_some() {
                Path::new(vec![w[0], w[1]]).ok()?
            } else {
                fastest_path(self.net, w[0], w[1])?
            };
            full = Some(match full {
                None => segment,
                Some(p) => p.concat(&segment),
            });
        }
        let path = full?;
        // Remove accidental immediate backtracks (A -> B -> A) introduced by
        // noisy candidates at path joints.
        let path = remove_immediate_backtracks(&path);
        debug_assert!(path.validate(self.net).is_ok());
        Some(MatchedTrajectory::new(
            traj.id,
            traj.driver,
            path,
            traj.departure_time_s().unwrap_or(0.0),
        ))
    }

    /// Matches a batch of trajectories, dropping the ones that cannot be
    /// matched.  Also reports how many were dropped.
    pub fn match_all(&self, trajectories: &[Trajectory]) -> (Vec<MatchedTrajectory>, usize) {
        let mut out = Vec::with_capacity(trajectories.len());
        let mut dropped = 0usize;
        for t in trajectories {
            match self.match_trajectory(t) {
                Some(m) if !m.path.is_trivial() => out.push(m),
                _ => dropped += 1,
            }
        }
        (out, dropped)
    }

    /// Free-flow travel time based route distance between two vertices; used
    /// by tests to sanity check the matcher.
    pub fn route_distance(&self, a: VertexId, b: VertexId) -> Option<f64> {
        fastest_path(self.net, a, b).and_then(|p| p.cost(self.net, CostType::Distance).ok())
    }
}

/// Removes `… A B A …` patterns from a path.
fn remove_immediate_backtracks(path: &Path) -> Path {
    let vs = path.vertices();
    let mut out: Vec<VertexId> = Vec::with_capacity(vs.len());
    for &v in vs {
        let n = out.len();
        if n >= 2 && out[n - 2] == v {
            out.pop();
        } else {
            out.push(v);
        }
    }
    Path::new(out).unwrap_or_else(|_| path.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gps::{DriverId, TrajectoryId};
    use crate::simulate::{simulate_gps_trace, GpsSimulationConfig};
    use l2r_road_network::{path_similarity, Point, RoadNetworkBuilder, RoadType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 5x5 grid with 500 m spacing.
    fn grid5() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for r in 0..5 {
            for c in 0..5 {
                b.add_vertex(Point::new(c as f64 * 500.0, r as f64 * 500.0));
            }
        }
        for r in 0..5u32 {
            for c in 0..5u32 {
                let v = VertexId(r * 5 + c);
                if c + 1 < 5 {
                    b.add_two_way(v, VertexId(r * 5 + c + 1), RoadType::Secondary)
                        .unwrap();
                }
                if r + 1 < 5 {
                    b.add_two_way(v, VertexId((r + 1) * 5 + c), RoadType::Secondary)
                        .unwrap();
                }
            }
        }
        b.build()
    }

    fn l_shaped_path() -> Path {
        // Along the bottom row then up the right column.
        Path::new(vec![
            VertexId(0),
            VertexId(1),
            VertexId(2),
            VertexId(3),
            VertexId(4),
            VertexId(9),
            VertexId(14),
            VertexId(19),
            VertexId(24),
        ])
        .unwrap()
    }

    #[test]
    fn high_frequency_trace_is_recovered_accurately() {
        let net = grid5();
        let gt = l_shaped_path();
        let mut rng = StdRng::seed_from_u64(11);
        let traj = simulate_gps_trace(
            &net,
            &gt,
            TrajectoryId(0),
            DriverId(0),
            0.0,
            &GpsSimulationConfig::high_frequency(),
            &mut rng,
        )
        .unwrap();
        let matcher = MapMatcher::with_defaults(&net);
        let matched = matcher.match_trajectory(&traj).unwrap();
        assert!(matched.path.validate(&net).is_ok());
        let sim = path_similarity(&net, &gt, &matched.path);
        assert!(
            sim > 0.9,
            "high-frequency matching should be near perfect, got {}",
            sim
        );
        assert_eq!(matched.source(), gt.source());
        assert_eq!(matched.destination(), gt.destination());
    }

    #[test]
    fn low_frequency_trace_is_still_mostly_recovered() {
        let net = grid5();
        let gt = l_shaped_path();
        let mut rng = StdRng::seed_from_u64(13);
        let traj = simulate_gps_trace(
            &net,
            &gt,
            TrajectoryId(1),
            DriverId(0),
            0.0,
            &GpsSimulationConfig::low_frequency(),
            &mut rng,
        )
        .unwrap();
        let matcher = MapMatcher::with_defaults(&net);
        let matched = matcher.match_trajectory(&traj).unwrap();
        assert!(matched.path.validate(&net).is_ok());
        let sim = path_similarity(&net, &gt, &matched.path);
        assert!(
            sim > 0.6,
            "low-frequency matching should recover most of the path, got {}",
            sim
        );
    }

    #[test]
    fn unmatched_inputs_are_rejected() {
        let net = grid5();
        let matcher = MapMatcher::with_defaults(&net);
        // Too few records.
        let t = Trajectory::new(TrajectoryId(0), DriverId(0), vec![]);
        assert!(matcher.match_trajectory(&t).is_none());
        // Records far away from every vertex.
        let far = Trajectory::new(
            TrajectoryId(1),
            DriverId(0),
            vec![
                crate::gps::GpsRecord::new(Point::new(1e7, 1e7), 0.0),
                crate::gps::GpsRecord::new(Point::new(1e7 + 100.0, 1e7), 10.0),
            ],
        );
        assert!(matcher.match_trajectory(&far).is_none());
    }

    #[test]
    fn batch_matching_reports_drops() {
        let net = grid5();
        let gt = l_shaped_path();
        let mut rng = StdRng::seed_from_u64(5);
        let good = simulate_gps_trace(
            &net,
            &gt,
            TrajectoryId(0),
            DriverId(0),
            0.0,
            &GpsSimulationConfig::high_frequency(),
            &mut rng,
        )
        .unwrap();
        let bad = Trajectory::new(TrajectoryId(1), DriverId(0), vec![]);
        let matcher = MapMatcher::with_defaults(&net);
        let (matched, dropped) = matcher.match_all(&[good, bad]);
        assert_eq!(matched.len(), 1);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn duplicate_grid_hits_do_not_survive_into_candidates() {
        // Two vertices 100 m apart: the whole network fits in one grid cell,
        // so a duplicate registration of vertex 0 makes the grid report
        // [0, 1, 0].  All three hits are exactly 50 m from the query point;
        // a distance-only sort (stable) kept that interleaved order and the
        // adjacent-only dedup let the duplicate survive into Viterbi.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(100.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Secondary).unwrap();
        let net = b.build();
        let mut matcher = MapMatcher::with_defaults(&net);
        matcher.vertex_grid.insert(0, &Point::new(0.0, 0.0));

        let cands = matcher.candidates(&Point::new(50.0, 0.0));
        let vertices: Vec<VertexId> = cands.iter().map(|(v, _)| *v).collect();
        assert_eq!(
            vertices,
            vec![v0, v1],
            "each vertex must appear once, ties ordered by vertex id"
        );
    }

    #[test]
    fn equidistant_candidates_are_ordered_deterministically() {
        let net = grid5();
        // (250, 0) is exactly 250 m from both vertex 0 (0,0) and vertex 1
        // (500,0); a radius wide enough to reach them must rank the tie by
        // vertex id.
        let wide = MapMatcher::new(
            &net,
            MapMatcherConfig {
                candidate_radius_m: 400.0,
                ..MapMatcherConfig::default()
            },
        );
        let cands = wide.candidates(&l2r_road_network::Point::new(250.0, 0.0));
        assert!(cands.len() >= 2);
        assert_eq!(cands[0].0, VertexId(0));
        assert_eq!(cands[1].0, VertexId(1));
        assert_eq!(cands[0].1.to_bits(), cands[1].1.to_bits());
    }

    #[test]
    fn backtrack_removal() {
        let p = Path::new(vec![VertexId(0), VertexId(1), VertexId(0), VertexId(5)]).unwrap();
        let cleaned = remove_immediate_backtracks(&p);
        assert_eq!(cleaned.vertices(), &[VertexId(0), VertexId(5)]);
        let ok = Path::new(vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        assert_eq!(remove_immediate_backtracks(&ok), ok);
    }
}
