//! # l2r-trajectory
//!
//! Trajectory substrate for the learn-to-route (L2R) reproduction:
//!
//! * raw GPS records and trajectories ([`gps`]);
//! * map-matched trajectories — the unit every later stage works on
//!   ([`matched`]);
//! * GPS trace simulation with configurable sampling rate and noise,
//!   substituting for the paper's proprietary D1/D2 GPS data sets
//!   ([`simulate`]);
//! * an HMM map matcher in the style of Newson & Krumm, the paper's
//!   reference \[29\] ([`map_matching`]);
//! * workload statistics such as the Table II distance distribution
//!   ([`stats`]).

#![warn(missing_docs)]

pub mod gps;
pub mod map_matching;
pub mod matched;
pub mod simulate;
pub mod stats;

pub use gps::{DriverId, GpsRecord, Trajectory, TrajectoryId};
pub use map_matching::{MapMatcher, MapMatcherConfig};
pub use matched::MatchedTrajectory;
pub use simulate::{simulate_gps_trace, GpsSimulationConfig};
pub use stats::{sampling_summary, DistanceDistribution, SamplingSummary};
