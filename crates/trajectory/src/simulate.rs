//! GPS trace simulation: turns a road-network path into a noisy, sampled GPS
//! trajectory.
//!
//! The paper evaluates on a high-frequency data set (1 Hz, Denmark) and a
//! low-frequency one (0.03–0.1 Hz, Chengdu taxis).  Since we have no access
//! to either, the workload generator drives synthetic vehicles along known
//! paths and this module converts those drives into GPS records with a
//! configurable sampling interval and Gaussian position noise — exercising
//! the map matcher exactly as real data would.

use rand::Rng;

use l2r_road_network::{CostType, Path, Point, RoadNetwork};

use crate::gps::{DriverId, GpsRecord, Trajectory, TrajectoryId};

/// Parameters of the GPS simulation.
#[derive(Debug, Clone, Copy)]
pub struct GpsSimulationConfig {
    /// Seconds between consecutive GPS fixes (1.0 = 1 Hz).
    pub sampling_interval_s: f64,
    /// Standard deviation of the Gaussian position noise, in metres.
    pub noise_sigma_m: f64,
}

impl GpsSimulationConfig {
    /// High-frequency preset mirroring data set D1 (1 Hz, modest noise).
    pub fn high_frequency() -> Self {
        GpsSimulationConfig {
            sampling_interval_s: 1.0,
            noise_sigma_m: 4.0,
        }
    }

    /// Low-frequency preset mirroring data set D2 (one fix every ~15 s).
    pub fn low_frequency() -> Self {
        GpsSimulationConfig {
            sampling_interval_s: 15.0,
            noise_sigma_m: 8.0,
        }
    }
}

/// Samples an approximately standard-normal value using the sum-of-uniforms
/// method (12 uniforms), avoiding an extra dependency on `rand_distr`.
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let mut acc = 0.0;
    for _ in 0..12 {
        acc += rng.gen::<f64>();
    }
    acc - 6.0
}

/// Drives along `path` at the free-flow speed of each edge, emitting a GPS
/// record every `config.sampling_interval_s` seconds with Gaussian noise.
///
/// The first and last positions of the path are always sampled so that the
/// trajectory spans the full trip.  Returns `None` when the path is trivial
/// or not connected in `net`.
pub fn simulate_gps_trace<R: Rng>(
    net: &RoadNetwork,
    path: &Path,
    id: TrajectoryId,
    driver: DriverId,
    departure_time_s: f64,
    config: &GpsSimulationConfig,
    rng: &mut R,
) -> Option<Trajectory> {
    if path.is_trivial() {
        return None;
    }
    let edge_ids = path.edge_ids(net).ok()?;

    // Build a piecewise-linear time -> position function along the path.
    // segment i spans [t_i, t_{i+1}] from point a_i to point b_i.
    let mut segments: Vec<(f64, f64, Point, Point)> = Vec::with_capacity(edge_ids.len());
    let mut t = 0.0;
    for eid in &edge_ids {
        let e = net.edge(*eid);
        let a = net.vertex(e.from).point;
        let b = net.vertex(e.to).point;
        let dt = e.cost(CostType::TravelTime).max(1e-6);
        segments.push((t, t + dt, a, b));
        t += dt;
    }
    let total_time = t;

    let mut records = Vec::new();
    let interval = config.sampling_interval_s.max(0.1);
    let mut seg_idx = 0usize;
    let mut sample_t = 0.0f64;
    loop {
        let clamped = sample_t.min(total_time);
        while seg_idx + 1 < segments.len() && clamped > segments[seg_idx].1 {
            seg_idx += 1;
        }
        let (t0, t1, a, b) = segments[seg_idx];
        let frac = if t1 > t0 {
            ((clamped - t0) / (t1 - t0)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let exact = a.lerp(&b, frac);
        let noisy = Point::new(
            exact.x + sample_standard_normal(rng) * config.noise_sigma_m,
            exact.y + sample_standard_normal(rng) * config.noise_sigma_m,
        );
        records.push(GpsRecord::new(noisy, departure_time_s + clamped));
        if sample_t >= total_time {
            break;
        }
        sample_t += interval;
    }

    Some(Trajectory::new(id, driver, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2r_road_network::{RoadNetworkBuilder, RoadType, VertexId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(n: usize, spacing: f64) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let vs: Vec<VertexId> = (0..n)
            .map(|i| b.add_vertex(Point::new(i as f64 * spacing, 0.0)))
            .collect();
        for w in vs.windows(2) {
            b.add_two_way(w[0], w[1], RoadType::Secondary).unwrap();
        }
        b.build()
    }

    #[test]
    fn high_frequency_trace_follows_the_path() {
        let net = line(5, 500.0);
        let path = Path::new((0..5).map(VertexId).collect()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let traj = simulate_gps_trace(
            &net,
            &path,
            TrajectoryId(0),
            DriverId(0),
            100.0,
            &GpsSimulationConfig::high_frequency(),
            &mut rng,
        )
        .unwrap();
        assert!(traj.len() > 50, "1 Hz over a 2 km trip yields many records");
        assert_eq!(traj.departure_time_s(), Some(100.0));
        // All records stay near the path corridor (y ≈ 0 within noise).
        for r in &traj.records {
            assert!(
                r.point.y.abs() < 40.0,
                "record strayed from the corridor: {:?}",
                r
            );
        }
        // The trace spans the full trip.
        let first = traj.records.first().unwrap().point;
        let last = traj.records.last().unwrap().point;
        assert!(first.x < 100.0);
        assert!(last.x > 1900.0);
    }

    #[test]
    fn low_frequency_trace_has_fewer_records() {
        let net = line(5, 500.0);
        let path = Path::new((0..5).map(VertexId).collect()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let hi = simulate_gps_trace(
            &net,
            &path,
            TrajectoryId(0),
            DriverId(0),
            0.0,
            &GpsSimulationConfig::high_frequency(),
            &mut rng,
        )
        .unwrap();
        let lo = simulate_gps_trace(
            &net,
            &path,
            TrajectoryId(1),
            DriverId(0),
            0.0,
            &GpsSimulationConfig::low_frequency(),
            &mut rng,
        )
        .unwrap();
        assert!(lo.len() < hi.len() / 4);
        assert!(lo.len() >= 2);
        assert!(lo.mean_sampling_interval_s().unwrap() > hi.mean_sampling_interval_s().unwrap());
    }

    #[test]
    fn trivial_or_invalid_paths_yield_none() {
        let net = line(3, 500.0);
        let mut rng = StdRng::seed_from_u64(1);
        let trivial = Path::single(VertexId(0));
        assert!(simulate_gps_trace(
            &net,
            &trivial,
            TrajectoryId(0),
            DriverId(0),
            0.0,
            &GpsSimulationConfig::high_frequency(),
            &mut rng
        )
        .is_none());
        let disconnected = Path::new(vec![VertexId(0), VertexId(2)]).unwrap();
        assert!(simulate_gps_trace(
            &net,
            &disconnected,
            TrajectoryId(0),
            DriverId(0),
            0.0,
            &GpsSimulationConfig::high_frequency(),
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let net = line(4, 400.0);
        let path = Path::new((0..4).map(VertexId).collect()).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate_gps_trace(
                &net,
                &path,
                TrajectoryId(0),
                DriverId(0),
                0.0,
                &GpsSimulationConfig::high_frequency(),
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
