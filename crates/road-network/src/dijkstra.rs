//! Single-objective shortest-path search (Dijkstra's algorithm) and variants
//! used throughout the paper: shortest, fastest and fuel-optimal paths, plus
//! a search that reports the settle order (used by L2R routing Case 2 to find
//! candidate regions along the fastest path).
//!
//! The functions here are thin compatibility wrappers over the reusable
//! [`SearchSpace`] of [`crate::search_space`]: each call borrows the calling
//! thread's shared space, so repeated queries do not re-allocate the O(|V|)
//! search arrays.  Hot loops that issue many searches should hold their own
//! [`SearchSpace`] and use its methods directly.

use crate::graph::{Edge, RoadNetwork, VertexId};
use crate::path::Path;
use crate::search_space::SearchSpace;
use crate::weights::CostType;

/// Result of a Dijkstra run from a single source, with owned search arrays
/// (detached from any [`SearchSpace`]).
#[derive(Debug, Clone)]
pub struct SearchResult {
    source: VertexId,
    dist: Vec<f64>,
    parent: Vec<Option<VertexId>>,
    /// Vertices in the order they were settled (popped with final distance).
    pub settle_order: Vec<VertexId>,
}

impl SearchResult {
    /// The search source.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Final cost to `v`, or `None` if unreachable.
    pub fn cost_to(&self, v: VertexId) -> Option<f64> {
        let d = self.dist[v.idx()];
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// Reconstructs the path from the source to `v`, or `None` if
    /// unreachable.
    pub fn path_to(&self, v: VertexId) -> Option<Path> {
        if !self.dist[v.idx()].is_finite() {
            return None;
        }
        let mut vertices = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.idx()] {
            vertices.push(p);
            cur = p;
        }
        vertices.reverse();
        debug_assert_eq!(vertices[0], self.source);
        Path::new(vertices).ok()
    }

    /// Copies a finished search out of a [`SearchSpace`] into owned arrays
    /// sized for a network with `n` vertices.
    fn from_space(space: &SearchSpace, n: usize) -> SearchResult {
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<VertexId>> = vec![None; n];
        for v in 0..n {
            let v = VertexId(v as u32);
            if let Some(d) = space.cost_to(v) {
                dist[v.idx()] = d;
                parent[v.idx()] = space.parent_of(v);
            }
        }
        SearchResult {
            source: space.source(),
            dist,
            parent,
            settle_order: space.settle_order().to_vec(),
        }
    }
}

/// Generic Dijkstra from `source`.
///
/// * `edge_cost` maps an edge to its (non-negative) cost; returning
///   `f64::INFINITY` (or any non-finite value) excludes the edge.
/// * `target`: when given, the search stops as soon as the target is settled.
pub fn dijkstra<F>(
    net: &RoadNetwork,
    source: VertexId,
    target: Option<VertexId>,
    edge_cost: F,
) -> SearchResult
where
    F: FnMut(&Edge) -> f64,
{
    SearchSpace::with_thread_local(|space| {
        space.dijkstra(net, source, target, edge_cost);
        SearchResult::from_space(space, net.num_vertices())
    })
}

/// Lowest-cost path between `source` and `target` under `cost_type`.
pub fn lowest_cost_path(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
    cost_type: CostType,
) -> Option<Path> {
    SearchSpace::with_thread_local(|space| space.lowest_cost_path(net, source, target, cost_type))
}

/// Shortest (minimum distance) path.
pub fn shortest_path(net: &RoadNetwork, source: VertexId, target: VertexId) -> Option<Path> {
    lowest_cost_path(net, source, target, CostType::Distance)
}

/// Fastest (minimum travel time) path.
pub fn fastest_path(net: &RoadNetwork, source: VertexId, target: VertexId) -> Option<Path> {
    lowest_cost_path(net, source, target, CostType::TravelTime)
}

/// Fuel-optimal path.
pub fn most_economic_path(net: &RoadNetwork, source: VertexId, target: VertexId) -> Option<Path> {
    lowest_cost_path(net, source, target, CostType::Fuel)
}

/// Fastest path together with the order in which vertices were settled by the
/// search.  L2R routing Case 2 scans the settle order to find candidate
/// regions near the source/destination (Section VI).
pub fn fastest_path_with_settle_order(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
) -> (Option<Path>, Vec<VertexId>) {
    if source.idx() >= net.num_vertices() || target.idx() >= net.num_vertices() {
        return (None, Vec::new());
    }
    SearchSpace::with_thread_local(|space| {
        space.dijkstra(net, source, Some(target), |e| e.cost(CostType::TravelTime));
        (space.path_to(target), space.settle_order().to_vec())
    })
}

/// One-to-all search under a cost type (no early termination).
pub fn one_to_all(net: &RoadNetwork, source: VertexId, cost_type: CostType) -> SearchResult {
    dijkstra(net, source, None, |e| e.cost(cost_type))
}

/// Lowest-cost path under an arbitrary linear combination of the three cost
/// types, used by the personalized baselines (Dom/TRIP) to route with learned
/// per-driver weights.
pub fn weighted_path(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
    weights: [f64; 3],
) -> Option<Path> {
    if source == target {
        return Some(Path::single(source));
    }
    SearchSpace::with_thread_local(|space| {
        space.dijkstra(net, source, Some(target), |e| {
            weights[0] * e.cost(CostType::Distance)
                + weights[1] * e.cost(CostType::TravelTime)
                + weights[2] * e.cost(CostType::Fuel)
        });
        space.path_to(target)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use crate::road_type::RoadType;
    use crate::spatial::Point;

    /// Two routes from 0 to 3: a short residential route through 2 and a
    /// longer but much faster motorway route through 1.
    fn two_route_network() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(5000.0, 4000.0));
        let v2 = b.add_vertex(Point::new(5000.0, -200.0));
        let v3 = b.add_vertex(Point::new(10000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Motorway).unwrap();
        b.add_two_way(v1, v3, RoadType::Motorway).unwrap();
        b.add_two_way(v0, v2, RoadType::Residential).unwrap();
        b.add_two_way(v2, v3, RoadType::Residential).unwrap();
        b.build()
    }

    #[test]
    fn shortest_and_fastest_disagree() {
        let net = two_route_network();
        let shortest = shortest_path(&net, VertexId(0), VertexId(3)).unwrap();
        let fastest = fastest_path(&net, VertexId(0), VertexId(3)).unwrap();
        assert!(
            shortest.contains(VertexId(2)),
            "shortest goes via the residential vertex"
        );
        assert!(
            fastest.contains(VertexId(1)),
            "fastest goes via the motorway vertex"
        );
        assert!(
            shortest.length_m(&net).unwrap() < fastest.length_m(&net).unwrap(),
            "the shortest path must not be longer than the fastest one"
        );
        assert!(
            fastest.cost(&net, CostType::TravelTime).unwrap()
                < shortest.cost(&net, CostType::TravelTime).unwrap()
        );
    }

    #[test]
    fn same_source_and_target_is_trivial() {
        let net = two_route_network();
        let p = shortest_path(&net, VertexId(1), VertexId(1)).unwrap();
        assert!(p.is_trivial());
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(100.0, 0.0)); // isolated
        let v2 = b.add_vertex(Point::new(200.0, 0.0));
        b.add_edge(v0, v2, RoadType::Primary).unwrap();
        let net = b.build();
        assert!(shortest_path(&net, VertexId(0), VertexId(1)).is_none());
        // Out-of-range vertices are handled gracefully.
        assert!(shortest_path(&net, VertexId(0), VertexId(99)).is_none());
    }

    #[test]
    fn settle_order_starts_at_source_and_reaches_target() {
        let net = two_route_network();
        let (path, order) = fastest_path_with_settle_order(&net, VertexId(0), VertexId(3));
        assert!(path.is_some());
        assert_eq!(order.first(), Some(&VertexId(0)));
        assert_eq!(order.last(), Some(&VertexId(3)));
    }

    #[test]
    fn one_to_all_costs_are_monotone_along_paths() {
        let net = two_route_network();
        let res = one_to_all(&net, VertexId(0), CostType::Distance);
        for v in 0..net.num_vertices() {
            let v = VertexId(v as u32);
            if let Some(p) = res.path_to(v) {
                let len = p.length_m(&net).unwrap();
                assert!((len - res.cost_to(v).unwrap()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn weighted_path_degenerates_to_single_objective() {
        let net = two_route_network();
        let w_dist = weighted_path(&net, VertexId(0), VertexId(3), [1.0, 0.0, 0.0]).unwrap();
        let shortest = shortest_path(&net, VertexId(0), VertexId(3)).unwrap();
        assert_eq!(w_dist, shortest);
        let w_time = weighted_path(&net, VertexId(0), VertexId(3), [0.0, 1.0, 0.0]).unwrap();
        let fastest = fastest_path(&net, VertexId(0), VertexId(3)).unwrap();
        assert_eq!(w_time, fastest);
    }

    #[test]
    fn edge_filter_via_infinite_cost() {
        let net = two_route_network();
        // Forbid motorways entirely: the path must use the residential route.
        let res = dijkstra(&net, VertexId(0), Some(VertexId(3)), |e| {
            if e.road_type == RoadType::Motorway {
                f64::INFINITY
            } else {
                e.cost(CostType::Distance)
            }
        });
        let p = res.path_to(VertexId(3)).unwrap();
        assert!(p.contains(VertexId(2)));
        assert!(!p.contains(VertexId(1)));
    }

    #[test]
    fn fuel_optimal_path_exists() {
        let net = two_route_network();
        let p = most_economic_path(&net, VertexId(0), VertexId(3)).unwrap();
        assert_eq!(p.source(), VertexId(0));
        assert_eq!(p.destination(), VertexId(3));
    }
}
