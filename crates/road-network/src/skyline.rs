//! Multi-objective (skyline / Pareto) route search.
//!
//! The personalized-routing baseline **Dom** \[26\] that the paper compares
//! against identifies a driver's dominating cost factors by comparing driven
//! paths to *skyline paths* — paths that are Pareto-optimal with respect to
//! distance, travel time and fuel consumption — and then performs an
//! expensive multi-objective skyline routing process at query time.  This
//! module provides that substrate: a label-correcting search that enumerates
//! Pareto-optimal paths between two vertices.
//!
//! The search is exponential in the worst case, so it keeps at most
//! `max_labels_per_vertex` non-dominated labels per vertex (a standard
//! practical bound); the paper's observation that Dom is by far the slowest
//! online method is preserved.

use std::collections::VecDeque;

use crate::graph::{RoadNetwork, VertexId};
use crate::path::Path;
use crate::weights::CostType;

/// A cost triple (distance, travel time, fuel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostVector {
    /// Distance in metres.
    pub distance_m: f64,
    /// Travel time in seconds.
    pub travel_time_s: f64,
    /// Fuel in millilitres.
    pub fuel_ml: f64,
}

impl CostVector {
    /// The zero vector.
    pub fn zero() -> Self {
        CostVector {
            distance_m: 0.0,
            travel_time_s: 0.0,
            fuel_ml: 0.0,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &CostVector) -> CostVector {
        CostVector {
            distance_m: self.distance_m + other.distance_m,
            travel_time_s: self.travel_time_s + other.travel_time_s,
            fuel_ml: self.fuel_ml + other.fuel_ml,
        }
    }

    /// `self` dominates `other` when it is no worse in every component and
    /// strictly better in at least one.
    pub fn dominates(&self, other: &CostVector) -> bool {
        let le = self.distance_m <= other.distance_m + 1e-9
            && self.travel_time_s <= other.travel_time_s + 1e-9
            && self.fuel_ml <= other.fuel_ml + 1e-9;
        let lt = self.distance_m < other.distance_m - 1e-9
            || self.travel_time_s < other.travel_time_s - 1e-9
            || self.fuel_ml < other.fuel_ml - 1e-9;
        le && lt
    }

    /// The component for a given cost type.
    pub fn get(&self, cost: CostType) -> f64 {
        match cost {
            CostType::Distance => self.distance_m,
            CostType::TravelTime => self.travel_time_s,
            CostType::Fuel => self.fuel_ml,
        }
    }

    /// Weighted scalarization `w · c`.
    pub fn weighted_sum(&self, weights: [f64; 3]) -> f64 {
        weights[0] * self.distance_m + weights[1] * self.travel_time_s + weights[2] * self.fuel_ml
    }
}

/// A Pareto-optimal path and its cost vector.
#[derive(Debug, Clone)]
pub struct SkylinePath {
    /// The path itself.
    pub path: Path,
    /// Its multi-objective cost.
    pub cost: CostVector,
}

#[derive(Debug, Clone)]
struct Label {
    cost: CostVector,
    /// Vertex sequence from the source to the label's vertex.
    vertices: Vec<VertexId>,
}

/// Enumerates Pareto-optimal (skyline) paths from `source` to `target`.
///
/// `max_labels_per_vertex` bounds the number of non-dominated labels kept per
/// vertex; 8–32 is plenty for the three-objective case in practice.
pub fn skyline_paths(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
    max_labels_per_vertex: usize,
) -> Vec<SkylinePath> {
    let n = net.num_vertices();
    if source.idx() >= n || target.idx() >= n {
        return Vec::new();
    }
    if source == target {
        return vec![SkylinePath {
            path: Path::single(source),
            cost: CostVector::zero(),
        }];
    }
    let cap = max_labels_per_vertex.max(1);
    let mut labels: Vec<Vec<Label>> = vec![Vec::new(); n];
    let mut queue: VecDeque<(VertexId, Label)> = VecDeque::new();
    let start = Label {
        cost: CostVector::zero(),
        vertices: vec![source],
    };
    labels[source.idx()].push(start.clone());
    queue.push_back((source, start));

    while let Some((vertex, label)) = queue.pop_front() {
        // Skip labels that have been dominated since they were enqueued.
        if !labels[vertex.idx()]
            .iter()
            .any(|l| l.cost == label.cost && l.vertices == label.vertices)
        {
            continue;
        }
        if vertex == target {
            continue; // no need to extend beyond the target
        }
        for edge in net.out_edges(vertex) {
            // Avoid cycles: a Pareto-optimal path never revisits a vertex.
            if label.vertices.contains(&edge.to) {
                continue;
            }
            let new_cost = label.cost.add(&CostVector {
                distance_m: edge.cost(CostType::Distance),
                travel_time_s: edge.cost(CostType::TravelTime),
                fuel_ml: edge.cost(CostType::Fuel),
            });
            let bucket = &mut labels[edge.to.idx()];
            if bucket.iter().any(|l| l.cost.dominates(&new_cost)) {
                continue;
            }
            bucket.retain(|l| !new_cost.dominates(&l.cost));
            if bucket.len() >= cap {
                continue;
            }
            let mut vertices = label.vertices.clone();
            vertices.push(edge.to);
            let new_label = Label {
                cost: new_cost,
                vertices,
            };
            bucket.push(new_label.clone());
            queue.push_back((edge.to, new_label));
        }
    }

    labels[target.idx()]
        .iter()
        .filter_map(|l| {
            Path::new(l.vertices.clone())
                .ok()
                .map(|path| SkylinePath { path, cost: l.cost })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::lowest_cost_path;
    use crate::graph::RoadNetworkBuilder;
    use crate::road_type::RoadType;
    use crate::spatial::Point;

    fn two_route_network() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(5000.0, 4000.0));
        let v2 = b.add_vertex(Point::new(5000.0, -200.0));
        let v3 = b.add_vertex(Point::new(10000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Motorway).unwrap();
        b.add_two_way(v1, v3, RoadType::Motorway).unwrap();
        b.add_two_way(v0, v2, RoadType::Residential).unwrap();
        b.add_two_way(v2, v3, RoadType::Residential).unwrap();
        b.build()
    }

    #[test]
    fn dominance_relation() {
        let a = CostVector {
            distance_m: 1.0,
            travel_time_s: 1.0,
            fuel_ml: 1.0,
        };
        let b = CostVector {
            distance_m: 2.0,
            travel_time_s: 1.0,
            fuel_ml: 1.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "a vector never dominates itself");
    }

    #[test]
    fn skyline_contains_both_tradeoff_paths() {
        let net = two_route_network();
        let sky = skyline_paths(&net, VertexId(0), VertexId(3), 16);
        assert!(
            sky.len() >= 2,
            "both the short and the fast route are Pareto-optimal"
        );
        let has_motorway_route = sky.iter().any(|s| s.path.contains(VertexId(1)));
        let has_residential_route = sky.iter().any(|s| s.path.contains(VertexId(2)));
        assert!(has_motorway_route && has_residential_route);
        // No path in the skyline dominates another.
        for (i, a) in sky.iter().enumerate() {
            for (j, b) in sky.iter().enumerate() {
                if i != j {
                    assert!(!a.cost.dominates(&b.cost));
                }
            }
        }
    }

    #[test]
    fn skyline_extremes_match_single_objective_optima() {
        let net = two_route_network();
        let sky = skyline_paths(&net, VertexId(0), VertexId(3), 16);
        let best_dist = sky
            .iter()
            .map(|s| s.cost.distance_m)
            .fold(f64::INFINITY, f64::min);
        let shortest = lowest_cost_path(&net, VertexId(0), VertexId(3), CostType::Distance)
            .unwrap()
            .length_m(&net)
            .unwrap();
        assert!((best_dist - shortest).abs() < 1e-6);
        let best_time = sky
            .iter()
            .map(|s| s.cost.travel_time_s)
            .fold(f64::INFINITY, f64::min);
        let fastest = lowest_cost_path(&net, VertexId(0), VertexId(3), CostType::TravelTime)
            .unwrap()
            .cost(&net, CostType::TravelTime)
            .unwrap();
        assert!((best_time - fastest).abs() < 1e-6);
    }

    #[test]
    fn trivial_and_invalid_queries() {
        let net = two_route_network();
        let sky = skyline_paths(&net, VertexId(2), VertexId(2), 8);
        assert_eq!(sky.len(), 1);
        assert!(sky[0].path.is_trivial());
        assert!(skyline_paths(&net, VertexId(0), VertexId(42), 8).is_empty());
    }

    #[test]
    fn weighted_sum_scalarization() {
        let c = CostVector {
            distance_m: 10.0,
            travel_time_s: 20.0,
            fuel_ml: 30.0,
        };
        assert!((c.weighted_sum([1.0, 0.5, 0.0]) - 20.0).abs() < 1e-12);
        assert!((c.get(CostType::Fuel) - 30.0).abs() < 1e-12);
    }
}
