//! # l2r-road-network
//!
//! Road-network substrate for the learn-to-route (L2R) reproduction of
//! *"Learning to Route with Sparse Trajectory Sets"* (ICDE 2018).
//!
//! This crate provides everything below the region-graph layer:
//!
//! * the road-network graph `G = (V, E, W)` with the paper's four weight
//!   functions (distance, travel time, fuel consumption, road type) —
//!   [`graph`], [`weights`], [`road_type`];
//! * paths and the path-similarity functions used by the evaluation
//!   (Equations 1 and 4, and the Figure 14 band matching) — [`path`],
//!   [`similarity`];
//! * routing primitives: Dijkstra variants ([`mod@dijkstra`]), the
//!   preference-constrained search of Algorithm 2 ([`constrained`]) and the
//!   multi-objective skyline search used by the Dom baseline ([`skyline`]),
//!   all built on the reusable zero-allocation [`search_space`];
//! * planar geometry helpers and a grid spatial index ([`spatial`]);
//! * the hand-rolled binary [`codec`] (Writer/Reader, [`Encode`]/[`Decode`])
//!   that model snapshots are built on.
//!
//! Everything is deterministic and free of I/O; higher layers (trajectories,
//! clustering, preference learning, the L2R router) build on these types.

#![warn(missing_docs)]

pub mod codec;
pub mod constrained;
pub mod dijkstra;
pub mod error;
pub mod graph;
pub mod path;
pub mod path_builder;
pub mod road_type;
pub mod search_space;
pub mod similarity;
pub mod skyline;
pub mod spatial;
pub mod weights;

pub use codec::{
    decode_network_parallel, decode_path, decode_vertex, CodecError, Decode, Encode, Reader,
    Writer, EDGE_WIRE_BYTES, VERTEX_WIRE_BYTES,
};
pub use constrained::preference_constrained_path;
pub use dijkstra::{
    dijkstra, fastest_path, fastest_path_with_settle_order, lowest_cost_path, most_economic_path,
    one_to_all, shortest_path, weighted_path, SearchResult,
};
pub use error::NetworkError;
pub use graph::{Edge, EdgeId, RoadNetwork, RoadNetworkBuilder, Vertex, VertexId};
pub use path::Path;
pub use path_builder::PathBuilder;
pub use road_type::{RoadType, RoadTypeSet};
pub use search_space::{searches_performed, SearchSpace};
pub use similarity::{
    band_match_similarity, band_match_similarity_10m, path_similarity, path_similarity_jaccard,
    path_to_waypoints, OverlapIndex, SimilarityKind,
};
pub use skyline::{skyline_paths, CostVector, SkylinePath};
pub use spatial::{
    centroid, convex_hull, density_cell_size, diameter, point_segment_distance, polygon_area,
    BoundingBox, GridIndex, Point,
};
pub use weights::{CostType, EdgeWeights};
