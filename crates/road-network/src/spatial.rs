//! Planar geometry primitives used throughout the workspace.
//!
//! All coordinates are expressed in a local, metric, planar frame (metres on
//! both axes).  The paper's road networks come from OpenStreetMap in
//! longitude/latitude; our synthetic networks are generated directly in a
//! projected frame, which keeps every distance computation a plain Euclidean
//! one and avoids pulling in a geodesy dependency.

/// A point in the local planar frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from easting/northing metres.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (cheaper when only comparing).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Midpoint of the segment `self`–`other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        self.lerp(other, 0.5)
    }
}

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl BoundingBox {
    /// An "empty" box that any point will expand.
    pub fn empty() -> Self {
        BoundingBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Builds the tightest box around `points`; returns [`BoundingBox::empty`]
    /// when the iterator is empty.
    pub fn from_points<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Self {
        let mut bb = Self::empty();
        for p in points {
            bb.expand(p);
        }
        bb
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Whether the box contains `p` (inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Width (x extent) in metres; zero for an empty box.
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (y extent) in metres; zero for an empty box.
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// True when no point has been added yet.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }
}

/// Distance from point `p` to the segment `a`–`b`, and the projection
/// parameter `t ∈ [0, 1]` of the closest point on the segment.
pub fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> (f64, f64) {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len_sq = abx * abx + aby * aby;
    if len_sq <= f64::EPSILON {
        return (p.distance(a), 0.0);
    }
    let t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq;
    let t = t.clamp(0.0, 1.0);
    let proj = a.lerp(b, t);
    (p.distance(&proj), t)
}

/// Convex hull of a point set (monotone chain), returned in counter-clockwise
/// order without the closing point.  Degenerate inputs (< 3 distinct points)
/// return whatever distinct points exist.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| (a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let cross = |o: &Point, a: &Point, b: &Point| -> f64 {
        (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)
    };
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop();
    hull
}

/// Area (m²) of a convex polygon given in order (shoelace formula).
pub fn polygon_area(hull: &[Point]) -> f64 {
    if hull.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..hull.len() {
        let a = &hull[i];
        let b = &hull[(i + 1) % hull.len()];
        acc += a.x * b.y - b.x * a.y;
    }
    acc.abs() * 0.5
}

/// Maximum pairwise distance (diameter, in metres) of a point set.
///
/// Quadratic, intended for the small hulls produced by [`convex_hull`].
pub fn diameter(points: &[Point]) -> f64 {
    let mut best = 0.0f64;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            best = best.max(points[i].distance(&points[j]));
        }
    }
    best
}

/// Centroid (arithmetic mean) of a point set; origin for an empty set.
pub fn centroid(points: &[Point]) -> Point {
    if points.is_empty() {
        return Point::default();
    }
    let mut x = 0.0;
    let mut y = 0.0;
    for p in points {
        x += p.x;
        y += p.y;
    }
    Point::new(x / points.len() as f64, y / points.len() as f64)
}

/// The cell size (metres) [`GridIndex::with_target_occupancy`] uses: sized so
/// a cell holds about `target_per_cell` items when `num_items` are spread
/// over `bbox` (`cell ≈ sqrt(area · target / n)`), clamped to [1 m, 50 km]
/// and to at most ~4M cells as a memory guard.  Exposed separately so callers
/// that also have a query-radius constraint (e.g. map matching) can combine
/// both bounds before building the grid.
pub fn density_cell_size(bbox: BoundingBox, num_items: usize, target_per_cell: f64) -> f64 {
    const MAX_CELLS: f64 = 4_000_000.0;
    let area = bbox.width() * bbox.height();
    let target = target_per_cell.max(0.25);
    if num_items == 0 || area <= 0.0 {
        // Degenerate extent or nothing to index: one cell is enough.
        bbox.width().max(bbox.height()).max(1.0)
    } else {
        let wanted = (area * target / num_items as f64).sqrt();
        let floor_by_memory = (area / MAX_CELLS).sqrt();
        wanted.max(floor_by_memory).clamp(1.0, 50_000.0)
    }
}

/// A uniform grid over a bounding box used to answer "items near a point"
/// queries.  It stores item ids (`u32`) in cells; the caller decides what the
/// ids refer to (vertices, edges, GPS samples, …).
#[derive(Debug, Clone)]
pub struct GridIndex {
    bbox: BoundingBox,
    cell_size: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<u32>>,
}

impl GridIndex {
    /// Creates an empty grid covering `bbox` with square cells of
    /// `cell_size` metres (minimum 1 m).
    pub fn new(bbox: BoundingBox, cell_size: f64) -> Self {
        let cell_size = cell_size.max(1.0);
        let cols = ((bbox.width() / cell_size).ceil() as usize).max(1);
        let rows = ((bbox.height() / cell_size).ceil() as usize).max(1);
        GridIndex {
            bbox,
            cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
        }
    }

    /// Creates an empty grid covering `bbox` with a cell size derived from
    /// item density instead of a fixed constant: the grid is sized so a cell
    /// holds about `target_per_cell` items when `num_items` are spread over
    /// the box, i.e. `cell ≈ sqrt(area · target / n)`.
    ///
    /// Fixed cell sizes stop working once networks span two orders of
    /// magnitude of |V|: a 50 m cell over a country-scale box allocates
    /// hundreds of millions of empty cells, while a 1 km cell over a town
    /// puts every vertex in one bucket and queries degrade to linear scans.
    /// Deriving the size from density keeps expected candidate-list lengths
    /// O(`target_per_cell`) at any scale.  The cell size is clamped to
    /// [1 m, 50 km] and the grid to at most ~4M cells as a memory guard.
    pub fn with_target_occupancy(
        bbox: BoundingBox,
        num_items: usize,
        target_per_cell: f64,
    ) -> Self {
        GridIndex::new(bbox, density_cell_size(bbox, num_items, target_per_cell))
    }

    /// Side length of a grid cell, in metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Total number of cells allocated (`cols × rows`).
    pub fn num_cells(&self) -> usize {
        self.cols * self.rows
    }

    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = ((p.x - self.bbox.min.x) / self.cell_size).floor();
        let cy = ((p.y - self.bbox.min.y) / self.cell_size).floor();
        let cx = cx.clamp(0.0, (self.cols - 1) as f64) as usize;
        let cy = cy.clamp(0.0, (self.rows - 1) as f64) as usize;
        (cx, cy)
    }

    /// Inserts item `id` at location `p`.
    pub fn insert(&mut self, id: u32, p: &Point) {
        let (cx, cy) = self.cell_of(p);
        self.cells[cy * self.cols + cx].push(id);
    }

    /// Inserts item `id` for every cell overlapped by the segment `a`–`b`
    /// (conservatively, using the segment's bounding box).
    pub fn insert_segment(&mut self, id: u32, a: &Point, b: &Point) {
        let (ax, ay) = self.cell_of(a);
        let (bx, by) = self.cell_of(b);
        let (x0, x1) = (ax.min(bx), ax.max(bx));
        let (y0, y1) = (ay.min(by), ay.max(by));
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                let cell = &mut self.cells[cy * self.cols + cx];
                if cell.last() != Some(&id) {
                    cell.push(id);
                }
            }
        }
    }

    /// Returns candidate item ids whose cell is within `radius` metres of `p`.
    /// The result may contain duplicates and false positives; callers filter
    /// by exact distance.
    pub fn query(&self, p: &Point, radius: f64) -> Vec<u32> {
        let r_cells = (radius / self.cell_size).ceil() as i64 + 1;
        let (cx, cy) = self.cell_of(p);
        let mut out = Vec::new();
        for dy in -r_cells..=r_cells {
            for dx in -r_cells..=r_cells {
                let x = cx as i64 + dx;
                let y = cy as i64 + dy;
                if x < 0 || y < 0 || x >= self.cols as i64 || y >= self.rows as i64 {
                    continue;
                }
                out.extend_from_slice(&self.cells[y as usize * self.cols + x as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let m = a.midpoint(&b);
        assert!((m.x - 5.0).abs() < 1e-12 && (m.y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_expansion_and_containment() {
        let mut bb = BoundingBox::empty();
        assert!(bb.is_empty());
        bb.expand(&Point::new(1.0, 2.0));
        bb.expand(&Point::new(-1.0, 5.0));
        assert!(!bb.is_empty());
        assert!(bb.contains(&Point::new(0.0, 3.0)));
        assert!(!bb.contains(&Point::new(2.0, 3.0)));
        assert!((bb.width() - 2.0).abs() < 1e-12);
        assert!((bb.height() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_projects_onto_segment() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let (d, t) = point_segment_distance(&Point::new(5.0, 3.0), &a, &b);
        assert!((d - 3.0).abs() < 1e-12);
        assert!((t - 0.5).abs() < 1e-12);
        // Beyond the end of the segment the closest point is the endpoint.
        let (d, t) = point_segment_distance(&Point::new(15.0, 0.0), &a, &b);
        assert!((d - 5.0).abs() < 1e-12);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_distance() {
        let a = Point::new(2.0, 2.0);
        let (d, t) = point_segment_distance(&Point::new(5.0, 6.0), &a, &a);
        assert!((d - 5.0).abs() < 1e-12);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn convex_hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(5.0, 5.0),
            Point::new(2.0, 7.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!((polygon_area(&hull) - 100.0).abs() < 1e-9);
        assert!((diameter(&hull) - (200.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn convex_hull_degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        let single = convex_hull(&[Point::new(1.0, 1.0)]);
        assert_eq!(single.len(), 1);
        let collinear = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        assert!(polygon_area(&collinear) < 1e-9);
    }

    #[test]
    fn centroid_of_square() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        let c = centroid(&pts);
        assert!((c.x - 5.0).abs() < 1e-12 && (c.y - 5.0).abs() < 1e-12);
    }

    #[test]
    fn grid_index_finds_nearby_items() {
        let bbox = BoundingBox {
            min: Point::new(0.0, 0.0),
            max: Point::new(1000.0, 1000.0),
        };
        let mut grid = GridIndex::new(bbox, 100.0);
        grid.insert(1, &Point::new(50.0, 50.0));
        grid.insert(2, &Point::new(950.0, 950.0));
        let near_origin = grid.query(&Point::new(60.0, 60.0), 50.0);
        assert!(near_origin.contains(&1));
        assert!(!near_origin.contains(&2));
        // Large radius finds everything.
        let all = grid.query(&Point::new(500.0, 500.0), 2000.0);
        assert!(all.contains(&1) && all.contains(&2));
    }

    #[test]
    fn density_derived_grid_keeps_occupancy_bounded_across_scales() {
        // The same constructor must produce sane grids for a town and for a
        // country-scale box: cell count tracks item count, not extent.
        for (extent_m, n_items) in [(10_000.0, 1_000usize), (400_000.0, 500_000usize)] {
            let bbox = BoundingBox {
                min: Point::new(0.0, 0.0),
                max: Point::new(extent_m, extent_m),
            };
            let grid = GridIndex::with_target_occupancy(bbox, n_items, 4.0);
            let cells = grid.num_cells() as f64;
            // Expected occupancy within a small factor of the target.
            let occupancy = n_items as f64 / cells;
            assert!(
                (1.0..=16.0).contains(&occupancy),
                "extent={extent_m} items={n_items}: occupancy {occupancy} out of range \
                 ({cells} cells, cell {} m)",
                grid.cell_size()
            );
            assert!(grid.num_cells() <= 4_100_000, "memory guard violated");
        }
    }

    #[test]
    fn density_derived_grid_handles_degenerate_inputs() {
        let empty_box = BoundingBox::empty();
        let g = GridIndex::with_target_occupancy(empty_box, 100, 4.0);
        assert!(g.num_cells() >= 1);
        let point_box = BoundingBox {
            min: Point::new(5.0, 5.0),
            max: Point::new(5.0, 5.0),
        };
        let mut g = GridIndex::with_target_occupancy(point_box, 0, 4.0);
        g.insert(1, &Point::new(5.0, 5.0));
        assert!(g.query(&Point::new(5.0, 5.0), 1.0).contains(&1));
    }

    #[test]
    fn grid_index_segment_insertion_covers_cells() {
        let bbox = BoundingBox {
            min: Point::new(0.0, 0.0),
            max: Point::new(1000.0, 1000.0),
        };
        let mut grid = GridIndex::new(bbox, 100.0);
        grid.insert_segment(7, &Point::new(10.0, 10.0), &Point::new(400.0, 10.0));
        let hits = grid.query(&Point::new(250.0, 20.0), 10.0);
        assert!(hits.contains(&7));
    }
}
