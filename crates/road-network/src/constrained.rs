//! Preference-constrained path finding — Algorithm 2 of the paper
//! ("ApplyingPreferencesModifiedDijkstra", Section V-C).
//!
//! Given a routing preference vector `⟨master, slave⟩`, the search minimises
//! the master travel-cost while *soft-constraining* exploration to edges that
//! satisfy the slave road-condition feature: when expanding a vertex, if at
//! least one outgoing edge satisfies the slave preference only such edges are
//! explored; otherwise (no satisfying edge exists) all outgoing edges are
//! explored so that the search never gets stuck.

use crate::graph::{RoadNetwork, VertexId};
use crate::path::Path;
use crate::road_type::RoadTypeSet;
use crate::search_space::SearchSpace;
use crate::weights::CostType;

/// Algorithm 2: minimise `master` while preferring edges whose road type is
/// in `slave` (when `slave` is `None` or empty, this is plain Dijkstra on the
/// master cost).
///
/// Returns `None` when `target` is unreachable from `source`.
///
/// This is a thin compatibility wrapper over
/// [`SearchSpace::preference_constrained_path`] using the calling thread's
/// shared search space; hot loops should hold their own [`SearchSpace`].
pub fn preference_constrained_path(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
    master: CostType,
    slave: Option<RoadTypeSet>,
) -> Option<Path> {
    SearchSpace::with_thread_local(|space| {
        space.preference_constrained_path(net, source, target, master, slave)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::lowest_cost_path;
    use crate::graph::RoadNetworkBuilder;
    use crate::road_type::RoadType;
    use crate::spatial::Point;

    /// A ladder network where the top rail is motorway (longer) and the
    /// bottom rail is residential (shorter), with rungs of tertiary roads.
    fn ladder() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let cols = 6usize;
        let mut top = Vec::new();
        let mut bottom = Vec::new();
        for i in 0..cols {
            // The top rail detours upwards making it longer.
            top.push(b.add_vertex(Point::new(i as f64 * 2000.0, 3000.0)));
            bottom.push(b.add_vertex(Point::new(i as f64 * 2000.0, 0.0)));
        }
        for i in 0..cols - 1 {
            b.add_two_way(top[i], top[i + 1], RoadType::Motorway)
                .unwrap();
            b.add_two_way(bottom[i], bottom[i + 1], RoadType::Residential)
                .unwrap();
        }
        for i in 0..cols {
            b.add_two_way(top[i], bottom[i], RoadType::Tertiary)
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn no_slave_matches_plain_dijkstra() {
        let net = ladder();
        // bottom[0] = VertexId(1), bottom[5] = VertexId(11).
        let a =
            preference_constrained_path(&net, VertexId(1), VertexId(11), CostType::Distance, None)
                .unwrap();
        let b = lowest_cost_path(&net, VertexId(1), VertexId(11), CostType::Distance).unwrap();
        assert_eq!(a, b);
        // An empty slave set behaves identically.
        let c = preference_constrained_path(
            &net,
            VertexId(1),
            VertexId(11),
            CostType::Distance,
            Some(RoadTypeSet::empty()),
        )
        .unwrap();
        assert_eq!(a, c);
    }

    /// Two routes from 0 to 3: a short residential route via 2 and a longer
    /// motorway route via 1; the source offers both road types.
    fn two_route_network() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(5000.0, 4000.0));
        let v2 = b.add_vertex(Point::new(5000.0, -200.0));
        let v3 = b.add_vertex(Point::new(10000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Motorway).unwrap();
        b.add_two_way(v1, v3, RoadType::Motorway).unwrap();
        b.add_two_way(v0, v2, RoadType::Residential).unwrap();
        b.add_two_way(v2, v3, RoadType::Residential).unwrap();
        b.build()
    }

    #[test]
    fn slave_preference_pulls_path_onto_preferred_roads() {
        let net = two_route_network();
        // Minimising distance alone prefers the residential route via 2, but
        // with a motorway slave preference the search is steered via 1
        // because the source has a satisfying outgoing edge (case (i) of
        // Algorithm 2 applies there).
        let slave = RoadTypeSet::single(RoadType::Motorway);
        let pref = preference_constrained_path(
            &net,
            VertexId(0),
            VertexId(3),
            CostType::Distance,
            Some(slave),
        )
        .unwrap();
        let plain = lowest_cost_path(&net, VertexId(0), VertexId(3), CostType::Distance).unwrap();
        let uses_motorway = |p: &Path| {
            p.edge_ids(&net)
                .unwrap()
                .iter()
                .any(|e| net.edge(*e).road_type == RoadType::Motorway)
        };
        assert!(
            uses_motorway(&pref),
            "preferred path must use the motorway route"
        );
        assert!(
            !uses_motorway(&plain),
            "unconstrained shortest path uses the residential route"
        );
        assert!(pref.length_m(&net).unwrap() >= plain.length_m(&net).unwrap());
    }

    #[test]
    fn slave_preference_does_not_trap_the_search_on_preferred_rails() {
        // On the ladder the destination sits on the residential rail; the
        // preferred (motorway) rail cannot exit at the destination column, so
        // the search must still return the reachable bottom-rail path.
        let net = ladder();
        let slave = RoadTypeSet::single(RoadType::Motorway);
        let pref = preference_constrained_path(
            &net,
            VertexId(1),
            VertexId(11),
            CostType::Distance,
            Some(slave),
        )
        .unwrap();
        assert_eq!(pref.source(), VertexId(1));
        assert_eq!(pref.destination(), VertexId(11));
    }

    #[test]
    fn unreachable_when_disconnected() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(100.0, 0.0));
        b.add_vertex(Point::new(1e6, 1e6)); // isolated vertex 2
        b.add_two_way(v0, v1, RoadType::Primary).unwrap();
        let net = b.build();
        assert!(preference_constrained_path(
            &net,
            VertexId(0),
            VertexId(2),
            CostType::Distance,
            None
        )
        .is_none());
        assert!(preference_constrained_path(
            &net,
            VertexId(0),
            VertexId(9),
            CostType::Distance,
            None
        )
        .is_none());
    }

    #[test]
    fn fallback_explores_all_edges_when_nothing_satisfies_slave() {
        // A pure residential network with a motorway-only preference must
        // still find a path (case (ii) of Algorithm 2).
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(500.0, 0.0));
        let v2 = b.add_vertex(Point::new(1000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Residential).unwrap();
        b.add_two_way(v1, v2, RoadType::Residential).unwrap();
        let net = b.build();
        let p = preference_constrained_path(
            &net,
            VertexId(0),
            VertexId(2),
            CostType::TravelTime,
            Some(RoadTypeSet::single(RoadType::Motorway)),
        )
        .unwrap();
        assert_eq!(p.vertices(), &[VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn trivial_query() {
        let net = ladder();
        let p = preference_constrained_path(&net, VertexId(3), VertexId(3), CostType::Fuel, None)
            .unwrap();
        assert!(p.is_trivial());
    }
}
