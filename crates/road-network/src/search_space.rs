//! Reusable, zero-allocation Dijkstra search state.
//!
//! Every search needs `dist`/`parent`/`settled` arrays of size `|V|` plus a
//! frontier heap.  Allocating and initialising them per query dominates the
//! cost of the many small searches the offline pipeline performs (Section
//! VII-C of the paper runs one search per observed path per candidate
//! preference, and one per transfer-center pair per B-edge).  A
//! [`SearchSpace`] keeps those arrays alive across queries and invalidates
//! them in O(1) with a generation stamp: a slot is only meaningful when its
//! stamp equals the current generation, so starting a new search is a counter
//! increment instead of an O(|V|) clear.
//!
//! The same state machine also powers the one-to-many variant
//! ([`SearchSpace::dijkstra_to_many`]) — a single search that keeps running
//! until a whole set of targets is settled, replacing `|targets|` independent
//! searches — and the preference-constrained search of Algorithm 2
//! ([`SearchSpace::preference_constrained_path`]).

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::graph::{Edge, RoadNetwork, VertexId};
use crate::path::Path;
use crate::road_type::RoadTypeSet;
use crate::weights::CostType;

/// Process-wide count of Dijkstra searches started (all variants, all
/// threads).  Used by the benchmark harness to report searches/second.
static SEARCHES: AtomicU64 = AtomicU64::new(0);

/// Number of Dijkstra searches started since process start (all variants,
/// all threads, monotone).  Sample before and after a workload to compute a
/// searches/second throughput figure.
///
/// Overflow audit (XL workloads push search counts orders of magnitude
/// higher than the original tiers): this counter is a `u64`, so even at
/// 10⁸ searches/second it would take thousands of years to wrap — wrap
/// handling is deliberately omitted.  The per-[`SearchSpace`] `generation`
/// stamp is a `u32` and *can* realistically wrap on a long-lived space
/// (2³² searches); [`SearchSpace`] handles that with a hard stamp reset at
/// the boundary, tested by `generation_wrap_hard_resets_stamps`.
pub fn searches_performed() -> u64 {
    SEARCHES.load(AtomicOrdering::Relaxed)
}

/// Sentinel for "no parent" in the compact parent array.
const NO_PARENT: u32 = u32::MAX;

/// A search frontier entry; ordered so the smallest cost pops first, with a
/// deterministic vertex-id tie-break.
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    cost: f64,
    vertex: VertexId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` keeps the heap ordering a strict total order even if a
        // NaN cost ever slips in (an inconsistent comparator corrupts a
        // binary heap silently).
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.vertex.0.cmp(&self.vertex.0))
    }
}

impl PartialOrd for QueueEntry {
    // l2r: allow(float-total-cmp) — trait-mandated shim; delegates to the
    // total_cmp-based Ord above, so no NaN-unsafe comparison happens here.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable Dijkstra state: generation-stamped `dist`/`parent`/`settled`
/// arrays and a drained heap.  Repeated searches through the same
/// `SearchSpace` perform no per-query allocation (beyond growing the arrays
/// the first time a larger network is seen); results are read back through
/// [`SearchSpace::cost_to`], [`SearchSpace::path_to`] and
/// [`SearchSpace::settle_order`] until the next search overwrites them.
///
/// A `SearchSpace` is intentionally `!Sync`: use one instance per thread
/// (e.g. one per worker of `l2r_par::par_map_init`).
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Current generation; array slots are valid iff their stamp matches.
    generation: u32,
    dist: Vec<f64>,
    parent: Vec<u32>,
    /// Stamp validating `dist`/`parent` per vertex.
    stamp: Vec<u32>,
    /// Stamp marking settled vertices.
    settled: Vec<u32>,
    /// Stamp marking the target set of a one-to-many search.
    target_stamp: Vec<u32>,
    heap: BinaryHeap<QueueEntry>,
    settle_order: Vec<VertexId>,
    source: VertexId,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace::new()
    }
}

thread_local! {
    /// Shared per-thread space backing the free compatibility functions in
    /// [`crate::dijkstra`] and [`crate::constrained`].
    static THREAD_SPACE: RefCell<SearchSpace> = RefCell::new(SearchSpace::new());
}

impl SearchSpace {
    /// Creates an empty search space; arrays grow on first use.
    pub fn new() -> SearchSpace {
        SearchSpace {
            generation: 0,
            dist: Vec::new(),
            parent: Vec::new(),
            stamp: Vec::new(),
            settled: Vec::new(),
            target_stamp: Vec::new(),
            heap: BinaryHeap::new(),
            settle_order: Vec::new(),
            source: VertexId(0),
        }
    }

    /// Runs `f` with the calling thread's shared search space.  Re-entrant
    /// calls (an edge-cost closure invoking another search) fall back to a
    /// fresh space instead of panicking.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut SearchSpace) -> R) -> R {
        THREAD_SPACE.with(|cell| match cell.try_borrow_mut() {
            Ok(mut space) => f(&mut space),
            Err(_) => f(&mut SearchSpace::new()),
        })
    }

    /// Starts a new search generation sized for `n` vertices.
    fn begin(&mut self, n: usize, source: VertexId) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, NO_PARENT);
            self.stamp.resize(n, 0);
            self.settled.resize(n, 0);
            self.target_stamp.resize(n, 0);
        }
        if self.generation == u32::MAX {
            // Generation wrap: hard-reset the stamps once every 2^32 - 1
            // searches so stale slots can never alias the new generation.
            self.stamp.fill(0);
            self.settled.fill(0);
            self.target_stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.heap.clear();
        self.settle_order.clear();
        self.source = source;
        SEARCHES.fetch_add(1, AtomicOrdering::Relaxed);
    }

    /// The shared core loop: plain or slave-constrained Dijkstra, stopping
    /// when every (in-range) target is settled, or exploring everything when
    /// `targets` is `None` or contains no in-range vertex (matching the
    /// historical behaviour of an unreachable explicit target).
    ///
    /// `on_settle`, when given, observes every settled vertex in settle order
    /// and aborts the search early by returning `true` — the hook behind
    /// [`SearchSpace::dijkstra_with_settle`].
    fn run<F>(
        &mut self,
        net: &RoadNetwork,
        source: VertexId,
        targets: Option<&[VertexId]>,
        slave: Option<RoadTypeSet>,
        mut edge_cost: F,
        mut on_settle: Option<&mut dyn FnMut(VertexId) -> bool>,
    ) where
        F: FnMut(&Edge) -> f64,
    {
        let n = net.num_vertices();
        self.begin(n, source);
        let generation = self.generation;
        let mut remaining = 0usize;
        if let Some(ts) = targets {
            for t in ts {
                if t.idx() < n && self.target_stamp[t.idx()] != generation {
                    self.target_stamp[t.idx()] = generation;
                    remaining += 1;
                }
            }
        }
        let bounded = remaining > 0;
        if source.idx() >= n {
            return;
        }

        self.dist[source.idx()] = 0.0;
        self.parent[source.idx()] = NO_PARENT;
        self.stamp[source.idx()] = generation;
        self.heap.push(QueueEntry {
            cost: 0.0,
            vertex: source,
        });

        while let Some(QueueEntry { cost, vertex }) = self.heap.pop() {
            let vi = vertex.idx();
            if self.settled[vi] == generation {
                continue;
            }
            self.settled[vi] = generation;
            self.settle_order.push(vertex);
            if let Some(hook) = on_settle.as_deref_mut() {
                if hook(vertex) {
                    break;
                }
            }
            if bounded && self.target_stamp[vi] == generation {
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }

            // Case split of Algorithm 2, lines 7-11: when a slave preference
            // is set and at least one outgoing edge satisfies it, only such
            // edges are explored; otherwise all edges are (so the search
            // never gets stuck).
            let none_satisfies = match slave {
                Some(s) => !net.out_edges(vertex).any(|e| s.contains(e.road_type)),
                None => true,
            };

            for edge in net.out_edges(vertex) {
                if let Some(s) = slave {
                    if !none_satisfies && !s.contains(edge.road_type) {
                        continue;
                    }
                }
                let w = edge_cost(edge);
                if !w.is_finite() || w < 0.0 {
                    continue;
                }
                let next = cost + w;
                let ti = edge.to.idx();
                let current = if self.stamp[ti] == generation {
                    self.dist[ti]
                } else {
                    f64::INFINITY
                };
                if next < current {
                    self.dist[ti] = next;
                    self.parent[ti] = vertex.0;
                    self.stamp[ti] = generation;
                    self.heap.push(QueueEntry {
                        cost: next,
                        vertex: edge.to,
                    });
                }
            }
        }
    }

    /// Plain Dijkstra from `source`; stops as soon as `target` (when given)
    /// is settled.  Results are read via the accessors below.
    pub fn dijkstra<F>(
        &mut self,
        net: &RoadNetwork,
        source: VertexId,
        target: Option<VertexId>,
        edge_cost: F,
    ) where
        F: FnMut(&Edge) -> f64,
    {
        match target {
            Some(t) => {
                let targets = [t];
                self.run(net, source, Some(&targets), None, edge_cost, None);
            }
            None => self.run(net, source, None, None, edge_cost, None),
        }
    }

    /// Plain Dijkstra with an early-exit settle hook: `on_settle` observes
    /// every settled vertex (in settle order) and returning `true` aborts the
    /// search immediately.  The search also stops once `target` (when given)
    /// is settled, exactly like [`SearchSpace::dijkstra`].
    ///
    /// This replaces the "run a full search, then scan the materialised
    /// settle order" pattern: L2R's Case-2 anchor search stops at the *first*
    /// settled region vertex instead of settling everything up to the target
    /// and copying the whole settle order into a fresh `Vec`.
    pub fn dijkstra_with_settle<F, C>(
        &mut self,
        net: &RoadNetwork,
        source: VertexId,
        target: Option<VertexId>,
        edge_cost: F,
        mut on_settle: C,
    ) where
        F: FnMut(&Edge) -> f64,
        C: FnMut(VertexId) -> bool,
    {
        match target {
            Some(t) => {
                let targets = [t];
                self.run(
                    net,
                    source,
                    Some(&targets),
                    None,
                    edge_cost,
                    Some(&mut on_settle),
                );
            }
            None => self.run(net, source, None, None, edge_cost, Some(&mut on_settle)),
        }
    }

    /// One-to-many Dijkstra: a single search that keeps running until every
    /// in-range vertex of `targets` is settled (duplicates are fine).  After
    /// the call, [`SearchSpace::path_to`] / [`SearchSpace::cost_to`] answer
    /// for *all* targets — the pipeline's Step 3 uses this to reach every
    /// transfer center of a neighbouring region with one search instead of
    /// `|targets|` full searches.
    pub fn dijkstra_to_many<F>(
        &mut self,
        net: &RoadNetwork,
        source: VertexId,
        targets: &[VertexId],
        edge_cost: F,
    ) where
        F: FnMut(&Edge) -> f64,
    {
        self.run(net, source, Some(targets), None, edge_cost, None);
    }

    /// Preference-constrained one-to-many search (Algorithm 2 semantics, see
    /// [`SearchSpace::preference_constrained_path`]).
    pub fn constrained_to_many(
        &mut self,
        net: &RoadNetwork,
        source: VertexId,
        targets: &[VertexId],
        master: CostType,
        slave: Option<RoadTypeSet>,
    ) {
        let slave = slave.filter(|s| !s.is_empty());
        self.run(net, source, Some(targets), slave, |e| e.cost(master), None);
    }

    /// Lowest-cost path under `cost_type` (allocation-free search; only the
    /// returned [`Path`] is allocated).
    pub fn lowest_cost_path(
        &mut self,
        net: &RoadNetwork,
        source: VertexId,
        target: VertexId,
        cost_type: CostType,
    ) -> Option<Path> {
        if source.idx() >= net.num_vertices() || target.idx() >= net.num_vertices() {
            return None;
        }
        if source == target {
            return Some(Path::single(source));
        }
        self.dijkstra(net, source, Some(target), |e| e.cost(cost_type));
        self.path_to(target)
    }

    /// Algorithm 2: minimise `master` while preferring edges whose road type
    /// is in `slave` (an absent or empty slave set degenerates to plain
    /// Dijkstra on the master cost).  Returns `None` when `target` is
    /// unreachable.
    pub fn preference_constrained_path(
        &mut self,
        net: &RoadNetwork,
        source: VertexId,
        target: VertexId,
        master: CostType,
        slave: Option<RoadTypeSet>,
    ) -> Option<Path> {
        if source.idx() >= net.num_vertices() || target.idx() >= net.num_vertices() {
            return None;
        }
        if source == target {
            return Some(Path::single(source));
        }
        let slave = slave.filter(|s| !s.is_empty());
        let targets = [target];
        self.run(net, source, Some(&targets), slave, |e| e.cost(master), None);
        self.path_to(target)
    }

    // ------------------------------------------------------------------
    // Result accessors (valid until the next search on this space)
    // ------------------------------------------------------------------

    /// The source of the most recent search.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The current search generation: incremented by exactly one every time a
    /// search starts on this space (wrapping back to 1 after `u32::MAX`
    /// searches).  Serving code uses this to *prove* scratch reuse: if every
    /// search of a query workload went through one space, the generation
    /// advances by exactly the number of searches performed — a fresh or
    /// thread-local space being allocated behind the caller's back would
    /// break that equality.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Final cost to `v` in the most recent search, or `None` when `v` was
    /// not reached (or is out of range).
    pub fn cost_to(&self, v: VertexId) -> Option<f64> {
        let i = v.idx();
        if i < self.stamp.len() && self.stamp[i] == self.generation && self.dist[i].is_finite() {
            Some(self.dist[i])
        } else {
            None
        }
    }

    /// Parent of `v` in the shortest-path tree of the most recent search
    /// (`None` for the source and for unreached or out-of-range vertices).
    pub fn parent_of(&self, v: VertexId) -> Option<VertexId> {
        let i = v.idx();
        if i < self.stamp.len() && self.stamp[i] == self.generation && self.parent[i] != NO_PARENT {
            Some(VertexId(self.parent[i]))
        } else {
            None
        }
    }

    /// Whether `v` was settled (popped with final distance) by the most
    /// recent search.
    pub fn is_settled(&self, v: VertexId) -> bool {
        let i = v.idx();
        i < self.settled.len() && self.settled[i] == self.generation
    }

    /// Reconstructs the path from the source of the most recent search to
    /// `v`, or `None` when unreachable.
    pub fn path_to(&self, v: VertexId) -> Option<Path> {
        self.cost_to(v)?;
        let mut vertices = vec![v];
        let mut current = v;
        loop {
            let p = self.parent[current.idx()];
            if p == NO_PARENT {
                break;
            }
            current = VertexId(p);
            vertices.push(current);
        }
        if *vertices.last().expect("non-empty") != self.source {
            return None;
        }
        vertices.reverse();
        Path::new(vertices).ok()
    }

    /// Vertices in the order they were settled by the most recent search.
    pub fn settle_order(&self) -> &[VertexId] {
        &self.settle_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use crate::road_type::RoadType;
    use crate::spatial::Point;

    /// Two routes from 0 to 3: a short residential route through 2 and a
    /// longer but much faster motorway route through 1.
    fn two_route_network() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(5000.0, 4000.0));
        let v2 = b.add_vertex(Point::new(5000.0, -200.0));
        let v3 = b.add_vertex(Point::new(10000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Motorway).unwrap();
        b.add_two_way(v1, v3, RoadType::Motorway).unwrap();
        b.add_two_way(v0, v2, RoadType::Residential).unwrap();
        b.add_two_way(v2, v3, RoadType::Residential).unwrap();
        b.build()
    }

    #[test]
    fn reuse_across_searches_does_not_leak_state() {
        let net = two_route_network();
        let mut space = SearchSpace::new();
        space.dijkstra(&net, VertexId(0), Some(VertexId(3)), |e| {
            e.cost(CostType::Distance)
        });
        let first = space.path_to(VertexId(3)).unwrap();
        // A second search from a different source must not see the first
        // search's distances.
        space.dijkstra(&net, VertexId(1), Some(VertexId(2)), |e| {
            e.cost(CostType::Distance)
        });
        assert_eq!(space.source(), VertexId(1));
        let second = space.path_to(VertexId(2)).unwrap();
        assert_eq!(second.source(), VertexId(1));
        // And re-running the first query reproduces the first answer.
        space.dijkstra(&net, VertexId(0), Some(VertexId(3)), |e| {
            e.cost(CostType::Distance)
        });
        assert_eq!(space.path_to(VertexId(3)).unwrap(), first);
    }

    #[test]
    fn to_many_matches_individual_searches() {
        let net = two_route_network();
        let mut space = SearchSpace::new();
        let targets = [VertexId(1), VertexId(2), VertexId(3)];
        space.dijkstra_to_many(&net, VertexId(0), &targets, |e| {
            e.cost(CostType::TravelTime)
        });
        let many: Vec<(Option<f64>, Option<Path>)> = targets
            .iter()
            .map(|t| (space.cost_to(*t), space.path_to(*t)))
            .collect();
        for (i, t) in targets.iter().enumerate() {
            let mut fresh = SearchSpace::new();
            fresh.dijkstra(&net, VertexId(0), Some(*t), |e| {
                e.cost(CostType::TravelTime)
            });
            assert_eq!(fresh.cost_to(*t), many[i].0, "cost to {t:?}");
            assert_eq!(fresh.path_to(*t), many[i].1, "path to {t:?}");
        }
        // All targets were settled by the single search.
        for t in targets {
            assert!(space.is_settled(t));
        }
    }

    #[test]
    fn out_of_range_targets_are_ignored() {
        let net = two_route_network();
        let mut space = SearchSpace::new();
        space.dijkstra_to_many(&net, VertexId(0), &[VertexId(3), VertexId(99)], |e| {
            e.cost(CostType::Distance)
        });
        assert!(space.path_to(VertexId(3)).is_some());
        assert!(space.cost_to(VertexId(99)).is_none());
        assert!(space.path_to(VertexId(99)).is_none());
    }

    #[test]
    fn shrinking_network_does_not_expose_stale_slots() {
        let net = two_route_network();
        let mut space = SearchSpace::new();
        space.dijkstra(&net, VertexId(0), None, |e| e.cost(CostType::Distance));
        assert!(space.cost_to(VertexId(3)).is_some());
        // A smaller network reuses the same arrays; vertices beyond its size
        // must read as unreached even though old stamps linger.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(100.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Primary).unwrap();
        let small = b.build();
        space.dijkstra(&small, VertexId(0), None, |e| e.cost(CostType::Distance));
        assert!(space.cost_to(VertexId(1)).is_some());
        assert!(space.cost_to(VertexId(3)).is_none());
    }

    #[test]
    fn search_counter_is_monotone() {
        let net = two_route_network();
        let before = searches_performed();
        let mut space = SearchSpace::new();
        space.dijkstra(&net, VertexId(0), Some(VertexId(3)), |e| {
            e.cost(CostType::Distance)
        });
        assert!(searches_performed() > before);
    }

    #[test]
    fn settle_hook_sees_settle_order_and_can_stop_early() {
        let net = two_route_network();
        let mut space = SearchSpace::new();
        // Without early exit the hook observes the full settle order.
        let mut observed = Vec::new();
        space.dijkstra_with_settle(
            &net,
            VertexId(0),
            Some(VertexId(3)),
            |e| e.cost(CostType::Distance),
            |v| {
                observed.push(v);
                false
            },
        );
        assert_eq!(observed, space.settle_order());
        assert_eq!(observed.first(), Some(&VertexId(0)));
        assert_eq!(observed.last(), Some(&VertexId(3)));

        // Early exit: stop at the first settled vertex other than the source.
        let mut count = 0usize;
        space.dijkstra_with_settle(
            &net,
            VertexId(0),
            None,
            |e| e.cost(CostType::Distance),
            |v| {
                count += 1;
                v != VertexId(0)
            },
        );
        assert_eq!(count, 2, "source + the first non-source settle");
        assert_eq!(space.settle_order().len(), 2);
    }

    #[test]
    fn generation_advances_once_per_search() {
        let net = two_route_network();
        let mut space = SearchSpace::new();
        let g0 = space.generation();
        space.dijkstra(&net, VertexId(0), Some(VertexId(3)), |e| {
            e.cost(CostType::Distance)
        });
        space.dijkstra_with_settle(
            &net,
            VertexId(1),
            None,
            |e| e.cost(CostType::TravelTime),
            |_| true,
        );
        assert_eq!(space.generation(), g0 + 2);
    }

    #[test]
    fn generation_wrap_hard_resets_stamps() {
        let net = two_route_network();
        let mut space = SearchSpace::new();
        space.dijkstra(&net, VertexId(0), Some(VertexId(3)), |e| {
            e.cost(CostType::Distance)
        });
        let path_before_wrap = space.path_to(VertexId(3)).unwrap();

        // Jump the counter to just below the wrap boundary instead of running
        // 2^32 searches; the tests module sees the private field.
        space.generation = u32::MAX - 1;
        space.dijkstra(&net, VertexId(1), Some(VertexId(2)), |e| {
            e.cost(CostType::Distance)
        });
        assert_eq!(space.generation(), u32::MAX);
        assert!(space.cost_to(VertexId(2)).is_some());

        // The next search crosses the wrap: stamps are hard-reset and the
        // generation restarts at 1, so slots stamped `u32::MAX` a moment ago
        // can never alias the new generation.
        space.dijkstra(&net, VertexId(0), Some(VertexId(3)), |e| {
            e.cost(CostType::Distance)
        });
        assert_eq!(space.generation(), 1);
        assert_eq!(space.path_to(VertexId(3)).unwrap(), path_before_wrap);

        // A post-wrap search on a smaller network leaves high slots untouched;
        // they must read as unreached despite their pre-wrap stamps.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(100.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Primary).unwrap();
        let small = b.build();
        let mut wrapped = SearchSpace::new();
        wrapped.dijkstra(&net, VertexId(0), None, |e| e.cost(CostType::Distance));
        wrapped.generation = u32::MAX;
        wrapped.dijkstra(&small, VertexId(0), None, |e| e.cost(CostType::Distance));
        assert_eq!(wrapped.generation(), 1);
        assert!(wrapped.cost_to(VertexId(1)).is_some());
        assert!(wrapped.cost_to(VertexId(3)).is_none(), "stale slot aliased");
    }

    #[test]
    fn thread_local_space_is_reused_and_reentrancy_safe() {
        let net = two_route_network();
        let outer = SearchSpace::with_thread_local(|space| {
            // A nested call while the outer borrow is live must still work.
            let nested = SearchSpace::with_thread_local(|inner| {
                inner.lowest_cost_path(&net, VertexId(0), VertexId(3), CostType::Distance)
            });
            assert!(nested.is_some());
            space.lowest_cost_path(&net, VertexId(0), VertexId(3), CostType::Distance)
        });
        assert!(outer.is_some());
    }
}
