//! The road-network graph `G = (V, E, W)` of the paper (Section III).
//!
//! Vertices are road intersections with planar coordinates; directed edges are
//! road segments annotated with distance, travel time, fuel consumption and
//! road type.  The graph is built once through [`RoadNetworkBuilder`] and is
//! immutable afterwards; adjacency is stored in a compact CSR layout so the
//! many graph searches performed by the routing algorithms stay cache
//! friendly.

use crate::error::NetworkError;
use crate::road_type::RoadType;
use crate::spatial::{BoundingBox, GridIndex, Point};
use crate::weights::{CostType, EdgeWeights};

/// Identifier of a vertex (road intersection).  Dense, `0..num_vertices`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Identifier of a directed edge (road segment).  Dense, `0..num_edges`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// The id as a usable index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a usable index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A road intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vertex {
    /// The vertex id (equal to its index in the vertex table).
    pub id: VertexId,
    /// Planar position in metres.
    pub point: Point,
}

/// A directed road segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// The edge id (equal to its index in the edge table).
    pub id: EdgeId,
    /// Tail vertex.
    pub from: VertexId,
    /// Head vertex.
    pub to: VertexId,
    /// Pre-computed weights (the paper's `wDI`, `wTT`, `wFC`).
    pub weights: EdgeWeights,
    /// The paper's `wRT`: functional road class.
    pub road_type: RoadType,
}

impl Edge {
    /// Weight of the edge under a given cost type.
    pub fn cost(&self, cost: CostType) -> f64 {
        self.weights.get(cost)
    }

    /// Distance in metres.
    pub fn distance_m(&self) -> f64 {
        self.weights.distance_m
    }
}

/// Immutable road-network graph with CSR adjacency.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
    /// CSR offsets into `out_edges`, length `num_vertices + 1`.
    out_offsets: Vec<u32>,
    /// Outgoing edge ids, grouped by tail vertex and sorted by
    /// `(head vertex, edge id)` within each group, so
    /// [`RoadNetwork::edge_between`] is a binary search over the group
    /// instead of a separate hash map.
    out_edges: Vec<EdgeId>,
    /// CSR offsets into `in_edges`, length `num_vertices + 1`.
    in_offsets: Vec<u32>,
    /// Incoming edge ids, grouped by head vertex.
    in_edges: Vec<EdgeId>,
    /// Bounding box of all vertex positions.
    bbox: BoundingBox,
}

impl RoadNetwork {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All vertices.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The vertex with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range; ids produced by this network are
    /// always valid.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id.idx()]
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.idx()]
    }

    /// Checked vertex lookup.
    pub fn try_vertex(&self, id: VertexId) -> Result<&Vertex, NetworkError> {
        self.vertices
            .get(id.idx())
            .ok_or(NetworkError::UnknownVertex(id))
    }

    /// Checked edge lookup.
    pub fn try_edge(&self, id: EdgeId) -> Result<&Edge, NetworkError> {
        self.edges
            .get(id.idx())
            .ok_or(NetworkError::UnknownEdge(id))
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = &Edge> + '_ {
        let start = self.out_offsets[v.idx()] as usize;
        let end = self.out_offsets[v.idx() + 1] as usize;
        self.out_edges[start..end]
            .iter()
            .map(move |e| self.edge(*e))
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = &Edge> + '_ {
        let start = self.in_offsets[v.idx()] as usize;
        let end = self.in_offsets[v.idx() + 1] as usize;
        self.in_edges[start..end].iter().map(move |e| self.edge(*e))
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.out_offsets[v.idx() + 1] - self.out_offsets[v.idx()]) as usize
    }

    /// The directed edge from `from` to `to`, if it exists — an O(log deg)
    /// binary search over `from`'s sorted out-edge group.  With parallel
    /// edges between the same pair, the lowest edge id is returned.
    pub fn edge_between(&self, from: VertexId, to: VertexId) -> Option<EdgeId> {
        if from.idx() >= self.vertices.len() {
            return None;
        }
        let start = self.out_offsets[from.idx()] as usize;
        let end = self.out_offsets[from.idx() + 1] as usize;
        let group = &self.out_edges[start..end];
        let pos = group.partition_point(|eid| self.edges[eid.idx()].to < to);
        group
            .get(pos)
            .copied()
            .filter(|eid| self.edges[eid.idx()].to == to)
    }

    /// Neighbours reachable by one outgoing edge.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_edges(v).map(|e| e.to)
    }

    /// Bounding box of all vertex positions.
    pub fn bounding_box(&self) -> BoundingBox {
        self.bbox
    }

    /// The vertex closest to `p` (linear scan; use [`RoadNetwork::vertex_index`]
    /// for repeated queries).  `None` for an empty network.
    pub fn nearest_vertex(&self, p: &Point) -> Option<VertexId> {
        self.vertices
            .iter()
            .min_by(|a, b| a.point.distance_sq(p).total_cmp(&b.point.distance_sq(p)))
            .map(|v| v.id)
    }

    /// Builds a grid index over vertex positions for fast nearest-neighbour
    /// style queries.  The returned ids are vertex ids.
    pub fn vertex_index(&self, cell_size_m: f64) -> GridIndex {
        let mut grid = GridIndex::new(self.bbox, cell_size_m);
        for v in &self.vertices {
            grid.insert(v.id.0, &v.point);
        }
        grid
    }

    /// Builds a grid index over edges (each edge registered along its
    /// segment) for map-matching candidate lookups.  The returned ids are
    /// edge ids.
    pub fn edge_index(&self, cell_size_m: f64) -> GridIndex {
        let mut grid = GridIndex::new(self.bbox, cell_size_m);
        for e in &self.edges {
            let a = self.vertex(e.from).point;
            let b = self.vertex(e.to).point;
            grid.insert_segment(e.id.0, &a, &b);
        }
        grid
    }

    /// [`RoadNetwork::vertex_index`] with the cell size derived from vertex
    /// density (see [`GridIndex::with_target_occupancy`]): expected
    /// candidate-list lengths stay O(`target_per_cell`) whether the network
    /// is a town or a country.
    pub fn vertex_index_auto(&self, target_per_cell: f64) -> GridIndex {
        let mut grid =
            GridIndex::with_target_occupancy(self.bbox, self.num_vertices(), target_per_cell);
        for v in &self.vertices {
            grid.insert(v.id.0, &v.point);
        }
        grid
    }

    /// [`RoadNetwork::edge_index`] with the cell size derived from edge
    /// density (see [`GridIndex::with_target_occupancy`]).
    pub fn edge_index_auto(&self, target_per_cell: f64) -> GridIndex {
        let mut grid =
            GridIndex::with_target_occupancy(self.bbox, self.num_edges(), target_per_cell);
        for e in &self.edges {
            let a = self.vertex(e.from).point;
            let b = self.vertex(e.to).point;
            grid.insert_segment(e.id.0, &a, &b);
        }
        grid
    }

    /// Straight-line distance between two vertices, in metres.
    pub fn euclidean(&self, a: VertexId, b: VertexId) -> f64 {
        self.vertex(a).point.distance(&self.vertex(b).point)
    }
}

/// Incremental builder for [`RoadNetwork`].
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-allocated capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        RoadNetworkBuilder {
            vertices: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of directed edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a vertex at `point` and returns its id.
    pub fn add_vertex(&mut self, point: Point) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(Vertex { id, point });
        id
    }

    /// Adds a directed edge with an explicit distance.
    pub fn add_edge_with_distance(
        &mut self,
        from: VertexId,
        to: VertexId,
        distance_m: f64,
        road_type: RoadType,
    ) -> Result<EdgeId, NetworkError> {
        if from.idx() >= self.vertices.len() {
            return Err(NetworkError::UnknownVertex(from));
        }
        if to.idx() >= self.vertices.len() {
            return Err(NetworkError::UnknownVertex(to));
        }
        if from == to {
            return Err(NetworkError::SelfLoop(from));
        }
        if !(distance_m.is_finite() && distance_m > 0.0) {
            return Err(NetworkError::InvalidWeight("distance", distance_m));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            id,
            from,
            to,
            weights: EdgeWeights::derive(distance_m, road_type),
            road_type,
        });
        Ok(id)
    }

    /// Adds a directed edge whose distance is the straight-line distance
    /// between the endpoints.
    pub fn add_edge(
        &mut self,
        from: VertexId,
        to: VertexId,
        road_type: RoadType,
    ) -> Result<EdgeId, NetworkError> {
        if from.idx() >= self.vertices.len() {
            return Err(NetworkError::UnknownVertex(from));
        }
        if to.idx() >= self.vertices.len() {
            return Err(NetworkError::UnknownVertex(to));
        }
        let d = self.vertices[from.idx()]
            .point
            .distance(&self.vertices[to.idx()].point)
            .max(1.0);
        self.add_edge_with_distance(from, to, d, road_type)
    }

    /// Adds a pair of directed edges (both directions) and returns both ids.
    pub fn add_two_way(
        &mut self,
        a: VertexId,
        b: VertexId,
        road_type: RoadType,
    ) -> Result<(EdgeId, EdgeId), NetworkError> {
        let e1 = self.add_edge(a, b, road_type)?;
        let e2 = self.add_edge(b, a, road_type)?;
        Ok((e1, e2))
    }

    /// Finalises the builder into an immutable [`RoadNetwork`].
    pub fn build(self) -> RoadNetwork {
        RoadNetwork::from_parts(self.vertices, self.edges)
    }
}

impl RoadNetwork {
    /// Assembles a network from vertex and edge tables whose ids equal their
    /// indexes, rebuilding the CSR adjacency and bounding box.  Shared by
    /// [`RoadNetworkBuilder::build`] and snapshot decoding, so a decoded
    /// network is structurally identical to a freshly built one.
    pub(crate) fn from_parts(vertices: Vec<Vertex>, edges: Vec<Edge>) -> RoadNetwork {
        let n = vertices.len();
        let mut out_counts = vec![0u32; n + 1];
        let mut in_counts = vec![0u32; n + 1];
        for e in &edges {
            out_counts[e.from.idx() + 1] += 1;
            in_counts[e.to.idx() + 1] += 1;
        }
        for i in 0..n {
            out_counts[i + 1] += out_counts[i];
            in_counts[i + 1] += in_counts[i];
        }
        let mut out_edges = vec![EdgeId(0); edges.len()];
        let mut in_edges = vec![EdgeId(0); edges.len()];
        let mut out_cursor = out_counts.clone();
        let mut in_cursor = in_counts.clone();
        for e in &edges {
            out_edges[out_cursor[e.from.idx()] as usize] = e.id;
            out_cursor[e.from.idx()] += 1;
            in_edges[in_cursor[e.to.idx()] as usize] = e.id;
            in_cursor[e.to.idx()] += 1;
        }
        // Sort each out-edge group by (head, id) so edge lookups are binary
        // searches and neighbour iteration order is deterministic.
        for v in 0..n {
            let start = out_counts[v] as usize;
            let end = out_counts[v + 1] as usize;
            out_edges[start..end].sort_unstable_by_key(|eid| (edges[eid.idx()].to, *eid));
        }
        let bbox = BoundingBox::from_points(vertices.iter().map(|v| &v.point));
        RoadNetwork {
            vertices,
            edges,
            out_offsets: out_counts,
            out_edges,
            in_offsets: in_counts,
            in_edges,
            bbox,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny 4-vertex diamond used by several tests:
    ///
    /// ```text
    ///      1
    ///    /   \
    ///   0     3
    ///    \   /
    ///      2
    /// ```
    fn diamond() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1000.0, 1000.0));
        let v2 = b.add_vertex(Point::new(1000.0, -1000.0));
        let v3 = b.add_vertex(Point::new(2000.0, 0.0));
        b.add_two_way(v0, v1, RoadType::Primary).unwrap();
        b.add_two_way(v0, v2, RoadType::Residential).unwrap();
        b.add_two_way(v1, v3, RoadType::Primary).unwrap();
        b.add_two_way(v2, v3, RoadType::Residential).unwrap();
        b.build()
    }

    #[test]
    fn build_counts_and_lookup() {
        let net = diamond();
        assert_eq!(net.num_vertices(), 4);
        assert_eq!(net.num_edges(), 8);
        assert_eq!(net.out_degree(VertexId(0)), 2);
        assert_eq!(net.out_degree(VertexId(3)), 2);
        assert!(net.edge_between(VertexId(0), VertexId(1)).is_some());
        assert!(net.edge_between(VertexId(0), VertexId(3)).is_none());
    }

    #[test]
    fn adjacency_matches_edges() {
        let net = diamond();
        let neigh: Vec<VertexId> = net.neighbors(VertexId(0)).collect();
        assert_eq!(neigh.len(), 2);
        assert!(neigh.contains(&VertexId(1)) && neigh.contains(&VertexId(2)));
        let in_edges: Vec<&Edge> = net.in_edges(VertexId(3)).collect();
        assert_eq!(in_edges.len(), 2);
        for e in in_edges {
            assert_eq!(e.to, VertexId(3));
        }
    }

    #[test]
    fn builder_rejects_bad_edges() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(10.0, 0.0));
        assert!(matches!(
            b.add_edge(v0, VertexId(99), RoadType::Primary),
            Err(NetworkError::UnknownVertex(_))
        ));
        assert!(matches!(
            b.add_edge(v0, v0, RoadType::Primary),
            Err(NetworkError::SelfLoop(_))
        ));
        assert!(matches!(
            b.add_edge_with_distance(v0, v1, -3.0, RoadType::Primary),
            Err(NetworkError::InvalidWeight(_, _))
        ));
        assert!(matches!(
            b.add_edge_with_distance(v0, v1, f64::NAN, RoadType::Primary),
            Err(NetworkError::InvalidWeight(_, _))
        ));
    }

    #[test]
    fn edge_weights_are_derived_from_geometry() {
        let net = diamond();
        let e = net.edge(net.edge_between(VertexId(0), VertexId(1)).unwrap());
        let expected = Point::new(0.0, 0.0).distance(&Point::new(1000.0, 1000.0));
        assert!((e.distance_m() - expected).abs() < 1e-9);
        assert!(e.cost(CostType::TravelTime) > 0.0);
        assert!(e.cost(CostType::Fuel) > 0.0);
    }

    #[test]
    fn nearest_vertex_and_indexes() {
        let net = diamond();
        assert_eq!(
            net.nearest_vertex(&Point::new(10.0, 10.0)),
            Some(VertexId(0))
        );
        assert_eq!(
            net.nearest_vertex(&Point::new(1990.0, 10.0)),
            Some(VertexId(3))
        );
        let vgrid = net.vertex_index(500.0);
        let hits = vgrid.query(&Point::new(0.0, 0.0), 100.0);
        assert!(hits.contains(&0));
        let egrid = net.edge_index(500.0);
        let ehits = egrid.query(&Point::new(500.0, 500.0), 300.0);
        assert!(!ehits.is_empty());
    }

    #[test]
    fn checked_lookups() {
        let net = diamond();
        assert!(net.try_vertex(VertexId(0)).is_ok());
        assert!(net.try_vertex(VertexId(17)).is_err());
        assert!(net.try_edge(EdgeId(0)).is_ok());
        assert!(net.try_edge(EdgeId(1000)).is_err());
    }

    #[test]
    fn empty_network_builds() {
        let net = RoadNetworkBuilder::new().build();
        assert_eq!(net.num_vertices(), 0);
        assert_eq!(net.num_edges(), 0);
        assert!(net.nearest_vertex(&Point::new(0.0, 0.0)).is_none());
        assert!(net.bounding_box().is_empty());
    }
}
