//! Error type shared by the road-network substrate.

use crate::graph::{EdgeId, VertexId};

/// Errors produced by road-network construction and path handling.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// A vertex id referenced something outside the vertex table.
    UnknownVertex(VertexId),
    /// An edge id referenced something outside the edge table.
    UnknownEdge(EdgeId),
    /// Two consecutive path vertices are not connected by an edge.
    Disconnected(VertexId, VertexId),
    /// A path must contain at least one vertex (two for most operations).
    EmptyPath,
    /// An edge was added with a non-positive or non-finite weight.
    InvalidWeight(&'static str, f64),
    /// A self-loop edge was rejected.
    SelfLoop(VertexId),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::UnknownVertex(v) => write!(f, "unknown vertex {}", v.0),
            NetworkError::UnknownEdge(e) => write!(f, "unknown edge {}", e.0),
            NetworkError::Disconnected(a, b) => {
                write!(f, "vertices {} and {} are not adjacent", a.0, b.0)
            }
            NetworkError::EmptyPath => write!(f, "path is empty"),
            NetworkError::InvalidWeight(name, v) => {
                write!(f, "invalid {} weight: {}", name, v)
            }
            NetworkError::SelfLoop(v) => write!(f, "self-loop at vertex {}", v.0),
        }
    }
}

impl std::error::Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetworkError::Disconnected(VertexId(1), VertexId(2));
        assert!(e.to_string().contains("not adjacent"));
        let e = NetworkError::InvalidWeight("distance", -1.0);
        assert!(e.to_string().contains("distance"));
    }
}
