//! Travel-cost model: the `W` weight functions of the paper.
//!
//! The paper maintains four weight functions per edge — distance (`DI`),
//! travel time (`TT`), fuel consumption (`FC`) and road type (`RT`)
//! (Section III).  Distance and road type come from the network itself;
//! travel time and fuel consumption are derived from the speed limit of the
//! edge's road type, following the eco-routing models the paper cites
//! ("fuel consumption is computed based on speed limits", Section VII-A).

use crate::road_type::RoadType;

/// The travel-cost features of the preference model's *master* dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostType {
    /// Travel distance (metres).
    Distance,
    /// Travel time (seconds).
    TravelTime,
    /// Fuel consumption (millilitres).
    Fuel,
}

impl CostType {
    /// All cost types in a stable order.
    pub const ALL: [CostType; 3] = [CostType::Distance, CostType::TravelTime, CostType::Fuel];

    /// Number of cost types.
    pub const COUNT: usize = 3;

    /// Stable dense index, `0..COUNT`.
    pub fn index(self) -> usize {
        match self {
            CostType::Distance => 0,
            CostType::TravelTime => 1,
            CostType::Fuel => 2,
        }
    }

    /// Inverse of [`CostType::index`].
    pub fn from_index(idx: usize) -> Option<CostType> {
        CostType::ALL.get(idx).copied()
    }

    /// Short name used in reports ("DI", "TT", "FC" as in the paper).
    pub fn short_name(self) -> &'static str {
        match self {
            CostType::Distance => "DI",
            CostType::TravelTime => "TT",
            CostType::Fuel => "FC",
        }
    }
}

impl std::fmt::Display for CostType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Travel time in seconds for `distance_m` metres at the speed limit of
/// `road_type`.
pub fn travel_time_s(distance_m: f64, road_type: RoadType) -> f64 {
    let speed_ms = road_type.speed_limit_kmh() / 3.6;
    distance_m / speed_ms
}

/// Fuel consumption in millilitres for `distance_m` metres driven at the
/// speed limit of `road_type`.
///
/// A simple convex (U-shaped) consumption curve: per-kilometre consumption is
/// minimal around 70 km/h and grows both for slow urban driving (idling,
/// stop-and-go) and for high-speed driving (aerodynamic drag).  The exact
/// constants are not important for the reproduction — what matters is that
/// fuel-optimal paths differ from both shortest and fastest paths, which this
/// curve guarantees.
pub fn fuel_ml(distance_m: f64, road_type: RoadType) -> f64 {
    let v = road_type.speed_limit_kmh();
    // Base consumption in l/100km as a quadratic in speed with minimum at 70 km/h.
    let per_100km_l = 5.0 + 0.0016 * (v - 70.0) * (v - 70.0);
    // l/100km -> ml/m == (l * 1000) / (100 * 1000 m).
    distance_m * per_100km_l / 100.0
}

/// Per-edge weight bundle, pre-computed at network build time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeWeights {
    /// Distance in metres.
    pub distance_m: f64,
    /// Travel time in seconds (free-flow, speed-limit based).
    pub travel_time_s: f64,
    /// Fuel consumption in millilitres.
    pub fuel_ml: f64,
}

impl EdgeWeights {
    /// Derives all weights from a distance and road type.
    pub fn derive(distance_m: f64, road_type: RoadType) -> Self {
        EdgeWeights {
            distance_m,
            travel_time_s: travel_time_s(distance_m, road_type),
            fuel_ml: fuel_ml(distance_m, road_type),
        }
    }

    /// Returns the weight for a given cost type.
    pub fn get(&self, cost: CostType) -> f64 {
        match cost {
            CostType::Distance => self.distance_m,
            CostType::TravelTime => self.travel_time_s,
            CostType::Fuel => self.fuel_ml,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_type_index_roundtrip() {
        for c in CostType::ALL {
            assert_eq!(CostType::from_index(c.index()), Some(c));
        }
        assert_eq!(CostType::from_index(3), None);
        assert_eq!(CostType::Distance.to_string(), "DI");
    }

    #[test]
    fn travel_time_scales_with_speed_limit() {
        let d = 1000.0;
        let t_motorway = travel_time_s(d, RoadType::Motorway);
        let t_residential = travel_time_s(d, RoadType::Residential);
        assert!(t_motorway < t_residential);
        // 1 km at 110 km/h is about 32.7 s.
        assert!((t_motorway - 1000.0 / (110.0 / 3.6)).abs() < 1e-9);
    }

    #[test]
    fn fuel_curve_is_u_shaped() {
        let d = 1000.0;
        let slow = fuel_ml(d, RoadType::Residential); // 30 km/h
        let mid = fuel_ml(d, RoadType::Primary); // 70 km/h (minimum)
        let fast = fuel_ml(d, RoadType::Motorway); // 110 km/h
        assert!(mid < slow, "urban driving should use more fuel per km");
        assert!(mid < fast, "high-speed driving should use more fuel per km");
        assert!(slow > 0.0 && mid > 0.0 && fast > 0.0);
    }

    #[test]
    fn derived_weights_are_consistent() {
        let w = EdgeWeights::derive(500.0, RoadType::Secondary);
        assert!((w.get(CostType::Distance) - 500.0).abs() < 1e-12);
        assert!(
            (w.get(CostType::TravelTime) - travel_time_s(500.0, RoadType::Secondary)).abs() < 1e-12
        );
        assert!((w.get(CostType::Fuel) - fuel_ml(500.0, RoadType::Secondary)).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_linearly_with_distance() {
        let w1 = EdgeWeights::derive(100.0, RoadType::Trunk);
        let w2 = EdgeWeights::derive(200.0, RoadType::Trunk);
        for c in CostType::ALL {
            assert!((w2.get(c) - 2.0 * w1.get(c)).abs() < 1e-9);
        }
    }
}
