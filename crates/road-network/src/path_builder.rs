//! In-place path assembly for the online serving path.
//!
//! The router stitches a recommended route from many segments: fastest-path
//! stubs, attached region-edge paths, connectors.  Joining those with
//! [`Path::concat`] re-allocates and copies the accumulated prefix for every
//! segment — O(n²) over a route with many segments.  A [`PathBuilder`] keeps
//! one growable vertex buffer alive across queries and appends each segment
//! in place with the same junction-deduplication rule as `concat`, so a whole
//! route costs one final allocation (the returned [`Path`]) regardless of how
//! many segments it was stitched from.

use crate::graph::VertexId;
use crate::path::Path;
use crate::search_space::SearchSpace;

/// A reusable, in-place route assembler.
///
/// The builder replicates [`Path::concat`] semantics segment by segment: when
/// an appended segment starts at the current last vertex the junction vertex
/// is not duplicated, otherwise the sequences are joined as-is.  Buffers are
/// retained across [`PathBuilder::reset`] calls, so steady-state assembly
/// performs no allocation until the final [`PathBuilder::to_path`].
#[derive(Debug, Clone, Default)]
pub struct PathBuilder {
    vertices: Vec<VertexId>,
}

impl PathBuilder {
    /// Creates an empty builder; the buffer grows on first use.
    pub fn new() -> PathBuilder {
        PathBuilder::default()
    }

    /// Clears the buffer (retaining capacity) and starts a new route at
    /// `start`.
    pub fn reset(&mut self, start: VertexId) {
        self.vertices.clear();
        self.vertices.push(start);
    }

    /// Number of vertices currently in the buffer.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the buffer is empty (only before the first
    /// [`PathBuilder::reset`]).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The last vertex of the route built so far.
    pub fn last(&self) -> Option<VertexId> {
        self.vertices.last().copied()
    }

    /// The vertices assembled so far.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// A checkpoint for [`PathBuilder::truncate`]: the current length.
    pub fn checkpoint(&self) -> usize {
        self.vertices.len()
    }

    /// Rolls the buffer back to a previous [`PathBuilder::checkpoint`] (used
    /// when a partially appended stitching attempt fails and the caller falls
    /// back to a different strategy).
    pub fn truncate(&mut self, checkpoint: usize) {
        self.vertices.truncate(checkpoint);
    }

    /// Appends a vertex sequence with [`Path::concat`] semantics: the first
    /// vertex is skipped when it equals the current last vertex.
    pub fn append_slice(&mut self, segment: &[VertexId]) {
        let mut rest = segment;
        if let (Some(last), Some(first)) = (self.last(), segment.first()) {
            if last == *first {
                rest = &segment[1..];
            }
        }
        self.vertices.extend_from_slice(rest);
    }

    /// Appends a vertex sequence in reverse order (the equivalent of
    /// `append_slice(&path.reversed())` without materialising the reversed
    /// path), with the same junction deduplication.
    pub fn append_reversed_slice(&mut self, segment: &[VertexId]) {
        let mut rest = segment;
        if let (Some(last), Some(first)) = (self.last(), segment.last()) {
            if last == *first {
                rest = &segment[..segment.len() - 1];
            }
        }
        self.vertices.extend(rest.iter().rev());
    }

    /// Appends the path from the most recent search's source to `v`, read
    /// straight out of `space`'s parent array (no intermediate [`Path`]
    /// allocation), with junction deduplication.  Returns `false` — leaving
    /// the buffer untouched — when `v` was not reached.
    pub fn append_from_search(&mut self, space: &SearchSpace, v: VertexId) -> bool {
        if space.cost_to(v).is_none() {
            return false;
        }
        let start = self.vertices.len();
        let mut current = v;
        self.vertices.push(current);
        while let Some(p) = space.parent_of(current) {
            self.vertices.push(p);
            current = p;
        }
        if current != space.source() {
            self.vertices.truncate(start);
            return false;
        }
        // The segment is currently reversed: `[v, …, source]`.  Junction
        // deduplication drops the duplicated source (the last pushed element)
        // before reversing in place.
        if start > 0 && self.vertices[start - 1] == space.source() {
            self.vertices.pop();
        }
        self.vertices[start..].reverse();
        true
    }

    /// Materialises the assembled route as an owned [`Path`] (the single
    /// allocation of a stitched query), leaving the buffer intact for reuse.
    ///
    /// # Panics
    /// Panics when called before the first [`PathBuilder::reset`] — an empty
    /// vertex sequence is not a valid path.
    pub fn to_path(&self) -> Path {
        Path::new(self.vertices.clone()).expect("builder holds at least the start vertex")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use crate::road_type::RoadType;
    use crate::spatial::Point;
    use crate::weights::CostType;

    fn line_network(n: usize) -> crate::graph::RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let vs: Vec<VertexId> = (0..n)
            .map(|i| b.add_vertex(Point::new(i as f64 * 1000.0, 0.0)))
            .collect();
        for w in vs.windows(2) {
            b.add_two_way(w[0], w[1], RoadType::Secondary).unwrap();
        }
        b.build()
    }

    #[test]
    fn append_slice_matches_concat() {
        let a = Path::new(vec![VertexId(0), VertexId(1)]).unwrap();
        let b = Path::new(vec![VertexId(1), VertexId(2)]).unwrap();
        let c = Path::new(vec![VertexId(5), VertexId(6)]).unwrap();
        let concat = a.concat(&b).concat(&c);

        let mut builder = PathBuilder::new();
        builder.reset(VertexId(0));
        builder.append_slice(&[VertexId(1)]);
        builder.append_slice(b.vertices());
        builder.append_slice(c.vertices());
        assert_eq!(builder.to_path(), concat);
    }

    #[test]
    fn append_reversed_slice_matches_reversed_concat() {
        let stored = Path::new(vec![VertexId(3), VertexId(2), VertexId(1)]).unwrap();
        let base = Path::new(vec![VertexId(0), VertexId(1)]).unwrap();
        let expected = base.concat(&stored.reversed());

        let mut builder = PathBuilder::new();
        builder.reset(VertexId(0));
        builder.append_slice(&[VertexId(1)]);
        builder.append_reversed_slice(stored.vertices());
        assert_eq!(builder.to_path(), expected);
    }

    #[test]
    fn append_from_search_matches_path_to() {
        let net = line_network(5);
        let mut space = SearchSpace::new();
        space.dijkstra(&net, VertexId(0), Some(VertexId(4)), |e| {
            e.cost(CostType::TravelTime)
        });
        let direct = space.path_to(VertexId(4)).unwrap();

        let mut builder = PathBuilder::new();
        builder.reset(VertexId(0));
        assert!(builder.append_from_search(&space, VertexId(4)));
        assert_eq!(builder.to_path(), direct);

        // A second leg continues from vertex 4 with junction deduplication.
        space.dijkstra(&net, VertexId(4), Some(VertexId(2)), |e| {
            e.cost(CostType::TravelTime)
        });
        assert!(builder.append_from_search(&space, VertexId(2)));
        assert_eq!(
            builder.to_path(),
            direct.concat(&space.path_to(VertexId(2)).unwrap())
        );
    }

    #[test]
    fn append_from_search_rejects_unreachable_without_touching_buffer() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(100.0, 0.0)); // isolated
        let v2 = b.add_vertex(Point::new(200.0, 0.0));
        b.add_edge(v0, v2, RoadType::Primary).unwrap();
        let net = b.build();
        let mut space = SearchSpace::new();
        space.dijkstra(&net, VertexId(0), None, |e| e.cost(CostType::Distance));

        let mut builder = PathBuilder::new();
        builder.reset(VertexId(0));
        let before = builder.checkpoint();
        assert!(!builder.append_from_search(&space, VertexId(1)));
        assert_eq!(builder.checkpoint(), before);
        assert_eq!(builder.to_path(), Path::single(VertexId(0)));
    }

    #[test]
    fn checkpoint_and_truncate_roll_back_partial_appends() {
        let mut builder = PathBuilder::new();
        builder.reset(VertexId(0));
        builder.append_slice(&[VertexId(0), VertexId(1), VertexId(2)]);
        let cp = builder.checkpoint();
        builder.append_slice(&[VertexId(2), VertexId(3)]);
        assert_eq!(builder.last(), Some(VertexId(3)));
        builder.truncate(cp);
        assert_eq!(builder.last(), Some(VertexId(2)));
        assert_eq!(builder.len(), 3);
    }

    #[test]
    fn reset_retains_capacity_and_restarts() {
        let mut builder = PathBuilder::new();
        assert!(builder.is_empty());
        builder.reset(VertexId(7));
        builder.append_slice(&[VertexId(7), VertexId(8), VertexId(9)]);
        let cap = builder.vertices.capacity();
        builder.reset(VertexId(1));
        assert_eq!(builder.vertices(), &[VertexId(1)]);
        assert_eq!(builder.vertices.capacity(), cap);
    }
}
