//! Road type taxonomy and the associated default speed limits.
//!
//! The paper uses the six most common OpenStreetMap highway classes as the
//! road-condition features of the preference model: motorway, trunk, primary,
//! secondary, tertiary and residential (Section VII-A).

/// The functional class of a road segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RoadType {
    /// Grade-separated, high-speed highways.
    Motorway,
    /// Major roads that are not motorways.
    Trunk,
    /// Primary arterials linking large towns.
    Primary,
    /// Secondary arterials linking towns.
    Secondary,
    /// Tertiary roads linking smaller settlements and neighbourhoods.
    Tertiary,
    /// Residential / access streets.
    Residential,
}

impl RoadType {
    /// All road types, ordered from highest to lowest class.
    pub const ALL: [RoadType; 6] = [
        RoadType::Motorway,
        RoadType::Trunk,
        RoadType::Primary,
        RoadType::Secondary,
        RoadType::Tertiary,
        RoadType::Residential,
    ];

    /// Number of distinct road types.
    pub const COUNT: usize = 6;

    /// Stable dense index of the road type, `0..COUNT`.
    pub fn index(self) -> usize {
        match self {
            RoadType::Motorway => 0,
            RoadType::Trunk => 1,
            RoadType::Primary => 2,
            RoadType::Secondary => 3,
            RoadType::Tertiary => 4,
            RoadType::Residential => 5,
        }
    }

    /// Inverse of [`RoadType::index`].  Returns `None` for out-of-range input.
    pub fn from_index(idx: usize) -> Option<RoadType> {
        RoadType::ALL.get(idx).copied()
    }

    /// Default speed limit in km/h used by the synthetic cost model.
    pub fn speed_limit_kmh(self) -> f64 {
        match self {
            RoadType::Motorway => 110.0,
            RoadType::Trunk => 90.0,
            RoadType::Primary => 70.0,
            RoadType::Secondary => 60.0,
            RoadType::Tertiary => 50.0,
            RoadType::Residential => 30.0,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RoadType::Motorway => "motorway",
            RoadType::Trunk => "trunk",
            RoadType::Primary => "primary",
            RoadType::Secondary => "secondary",
            RoadType::Tertiary => "tertiary",
            RoadType::Residential => "residential",
        }
    }

    /// Whether the type counts as a "highway" in the informal sense used by
    /// the paper's examples (motorway or trunk).
    pub fn is_highway(self) -> bool {
        matches!(self, RoadType::Motorway | RoadType::Trunk)
    }
}

impl std::fmt::Display for RoadType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of road types, stored as a bit mask.  Used for slave-dimension
/// (road-condition) routing preferences and for region functionality
/// descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct RoadTypeSet(u8);

impl RoadTypeSet {
    /// The empty set.
    pub fn empty() -> Self {
        RoadTypeSet(0)
    }

    /// The set containing every road type.
    pub fn all() -> Self {
        RoadTypeSet((1u8 << RoadType::COUNT) - 1)
    }

    /// A singleton set.
    pub fn single(rt: RoadType) -> Self {
        RoadTypeSet(1 << rt.index())
    }

    /// Adds `rt` to the set.
    pub fn insert(&mut self, rt: RoadType) {
        self.0 |= 1 << rt.index();
    }

    /// Removes `rt` from the set.
    pub fn remove(&mut self, rt: RoadType) {
        self.0 &= !(1 << rt.index());
    }

    /// Whether `rt` is a member.
    pub fn contains(self, rt: RoadType) -> bool {
        self.0 & (1 << rt.index()) != 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of the two sets.
    pub fn union(self, other: RoadTypeSet) -> RoadTypeSet {
        RoadTypeSet(self.0 | other.0)
    }

    /// Intersection of the two sets.
    pub fn intersection(self, other: RoadTypeSet) -> RoadTypeSet {
        RoadTypeSet(self.0 & other.0)
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|`; 1.0 when both sets are empty.
    pub fn jaccard(self, other: RoadTypeSet) -> f64 {
        let union = self.union(other).len();
        if union == 0 {
            return 1.0;
        }
        self.intersection(other).len() as f64 / union as f64
    }

    /// Iterates over the members from highest to lowest road class.
    pub fn iter(self) -> impl Iterator<Item = RoadType> {
        RoadType::ALL
            .into_iter()
            .filter(move |rt| self.contains(*rt))
    }
}

impl FromIterator<RoadType> for RoadTypeSet {
    /// Builds a set from an iterator of road types.
    fn from_iter<I: IntoIterator<Item = RoadType>>(iter: I) -> Self {
        let mut s = Self::empty();
        for rt in iter {
            s.insert(rt);
        }
        s
    }
}

impl std::fmt::Display for RoadTypeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.iter().map(|rt| rt.name()).collect();
        write!(f, "{{{}}}", names.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for rt in RoadType::ALL {
            assert_eq!(RoadType::from_index(rt.index()), Some(rt));
        }
        assert_eq!(RoadType::from_index(6), None);
    }

    #[test]
    fn speed_limits_decrease_with_class() {
        let speeds: Vec<f64> = RoadType::ALL
            .iter()
            .map(|rt| rt.speed_limit_kmh())
            .collect();
        for w in speeds.windows(2) {
            assert!(w[0] > w[1], "speed limits must strictly decrease by class");
        }
    }

    #[test]
    fn highway_classification() {
        assert!(RoadType::Motorway.is_highway());
        assert!(RoadType::Trunk.is_highway());
        assert!(!RoadType::Residential.is_highway());
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = RoadTypeSet::empty();
        assert!(s.is_empty());
        s.insert(RoadType::Primary);
        s.insert(RoadType::Motorway);
        assert_eq!(s.len(), 2);
        assert!(s.contains(RoadType::Primary));
        assert!(!s.contains(RoadType::Residential));
        s.remove(RoadType::Primary);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(RoadType::Primary));
    }

    #[test]
    fn set_union_intersection_jaccard() {
        let a = RoadTypeSet::from_iter([RoadType::Motorway, RoadType::Primary]);
        let b = RoadTypeSet::from_iter([RoadType::Primary, RoadType::Residential]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!((a.jaccard(b) - 1.0 / 3.0).abs() < 1e-12);
        assert!((RoadTypeSet::empty().jaccard(RoadTypeSet::empty()) - 1.0).abs() < 1e-12);
        assert_eq!(RoadTypeSet::all().len(), RoadType::COUNT);
    }

    #[test]
    fn set_iteration_order_is_by_class() {
        let s = RoadTypeSet::from_iter([RoadType::Residential, RoadType::Motorway]);
        let members: Vec<RoadType> = s.iter().collect();
        assert_eq!(members, vec![RoadType::Motorway, RoadType::Residential]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(RoadType::Motorway.to_string(), "motorway");
        let s = RoadTypeSet::from_iter([RoadType::Motorway, RoadType::Residential]);
        assert_eq!(s.to_string(), "{motorway+residential}");
    }
}
