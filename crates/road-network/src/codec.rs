//! Binary encoding primitives for model snapshots.
//!
//! The build environment has no serde, so snapshot serialisation is
//! hand-rolled in the workspace's dependency-free house style: a [`Writer`]
//! appends little-endian fields to a byte buffer, a [`Reader`] consumes them
//! with bounds-checked reads, and the [`Encode`] / [`Decode`] traits tie a
//! type to its wire form.  Higher crates (`l2r-region-graph`,
//! `l2r-preference`, `l2r-core`) implement the traits for their own types;
//! this module covers the road-network layer plus the primitives.
//!
//! Design rules, shared by every implementation:
//!
//! * **little-endian, fixed-width** — `u8`/`u32`/`u64` as-is, `usize` as
//!   `u64`, `f64` via [`f64::to_bits`] so round-trips are bit-exact;
//! * **length-prefixed sequences** — a `u64` count followed by the elements,
//!   with the count validated against the remaining buffer *before* any
//!   allocation, so a corrupt length errors instead of exhausting memory;
//! * **decode never panics** — every id read from the wire is validated
//!   against the counts embedded in the same payload (see
//!   [`Reader::index`]); malformed input surfaces as a [`CodecError`].

use crate::graph::{Edge, EdgeId, RoadNetwork, Vertex, VertexId};
use crate::path::Path;
use crate::road_type::{RoadType, RoadTypeSet};
use crate::spatial::Point;
use crate::weights::{CostType, EdgeWeights};

/// An error raised while decoding a snapshot buffer.
///
/// Decoding is total: any malformed input — truncation, an enum tag outside
/// its range, an index beyond the embedded counts — produces an error value,
/// never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a field could be read.
    UnexpectedEof {
        /// What was being read.
        what: &'static str,
        /// Bytes needed to read it.
        needed: usize,
        /// Bytes left in the buffer.
        remaining: usize,
    },
    /// A sequence length exceeds what the remaining buffer could possibly
    /// hold (caught before any allocation).
    ImplausibleLength {
        /// What sequence was being read.
        what: &'static str,
        /// The length read from the wire.
        len: u64,
    },
    /// An id or tag is outside the valid range embedded in the payload.
    IndexOutOfRange {
        /// What kind of id was read.
        what: &'static str,
        /// The value read from the wire.
        index: u64,
        /// The exclusive upper bound it was validated against.
        limit: u64,
    },
    /// A structural invariant of the decoded data does not hold.
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof {
                what,
                needed,
                remaining,
            } => write!(
                f,
                "unexpected end of buffer reading {what}: need {needed} bytes, {remaining} left"
            ),
            CodecError::ImplausibleLength { what, len } => {
                write!(f, "implausible length {len} for {what}")
            }
            CodecError::IndexOutOfRange { what, index, limit } => {
                write!(f, "{what} {index} out of range (limit {limit})")
            }
            CodecError::Invalid(what) => write!(f, "invalid snapshot data: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends little-endian fields to a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn length(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` via its bit pattern (round-trips are bit-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed sequence.
    pub fn seq<T: Encode>(&mut self, items: &[T]) {
        self.length(items.len());
        for item in items {
            item.encode(self);
        }
    }

    /// Writes a length-prefixed byte slice (`u32` length + raw bytes) —
    /// the wire form of short variable-length fields such as dataset names
    /// in the serving frame protocol.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string (see [`Writer::bytes`]).
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Consumes a byte buffer with bounds-checked little-endian reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                what,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a bool (rejecting anything but 0 or 1).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid(what)),
        }
    }

    /// Reads a sequence length and validates it against the remaining buffer:
    /// each element occupies at least `min_elem_bytes`, so a length the
    /// buffer cannot possibly hold is rejected *before* any allocation.
    pub fn length(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, CodecError> {
        let len = self.u64(what)?;
        let budget = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if len > budget {
            return Err(CodecError::ImplausibleLength { what, len });
        }
        Ok(len as usize)
    }

    /// Reads a `u32` id and validates it against an exclusive upper bound.
    pub fn index(&mut self, what: &'static str, limit: usize) -> Result<u32, CodecError> {
        let v = self.u32(what)?;
        if (v as usize) < limit {
            Ok(v)
        } else {
            Err(CodecError::IndexOutOfRange {
                what,
                index: v as u64,
                limit: limit as u64,
            })
        }
    }

    /// Reads a length-prefixed byte slice written by [`Writer::bytes`],
    /// rejecting lengths above `max_len` (or beyond the remaining buffer)
    /// before touching any data.
    pub fn bytes(&mut self, what: &'static str, max_len: usize) -> Result<&'a [u8], CodecError> {
        let len = self.u32(what)? as usize;
        if len > max_len {
            return Err(CodecError::ImplausibleLength {
                what,
                len: len as u64,
            });
        }
        self.take(len, what)
    }

    /// Reads a length-prefixed UTF-8 string written by [`Writer::str`];
    /// non-UTF-8 bytes are a decode error, never a panic.
    pub fn str(&mut self, what: &'static str, max_len: usize) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes(what, max_len)?).map_err(|_| CodecError::Invalid(what))
    }

    /// Reads a length-prefixed sequence of context-free elements.
    pub fn seq<T: Decode>(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<Vec<T>, CodecError> {
        let len = self.length(what, min_elem_bytes)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }
}

/// A type with a canonical little-endian wire form.
pub trait Encode {
    /// Appends the wire form of `self` to `w`.
    fn encode(&self, w: &mut Writer);
}

/// A type decodable from its [`Encode`] wire form without external context.
///
/// Types whose validation needs context (e.g. vertex ids checked against a
/// road network) expose standalone `decode_*` functions instead.
pub trait Decode: Sized {
    /// Reads one value, validating everything that can be validated without
    /// context.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.f64("f64")
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64("u64")
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.length(*self);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(r.u64("usize")? as usize)
    }
}

impl Encode for Point {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.x);
        w.f64(self.y);
    }
}

impl Decode for Point {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Point::new(r.f64("point.x")?, r.f64("point.y")?))
    }
}

impl Encode for RoadType {
    fn encode(&self, w: &mut Writer) {
        w.u8(self.index() as u8);
    }
}

impl Decode for RoadType {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let idx = r.u8("road type")?;
        RoadType::from_index(idx as usize).ok_or(CodecError::IndexOutOfRange {
            what: "road type",
            index: idx as u64,
            limit: RoadType::COUNT as u64,
        })
    }
}

impl Encode for RoadTypeSet {
    fn encode(&self, w: &mut Writer) {
        // Re-encode through the member list so the wire form stays valid even
        // if the in-memory representation ever changes.
        let mut mask = 0u8;
        for rt in self.iter() {
            mask |= 1 << rt.index();
        }
        w.u8(mask);
    }
}

impl Decode for RoadTypeSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mask = r.u8("road type set")?;
        if mask >= 1 << RoadType::COUNT {
            return Err(CodecError::Invalid("road type set has unknown bits"));
        }
        Ok(RoadType::ALL
            .into_iter()
            .filter(|rt| mask & (1 << rt.index()) != 0)
            .collect())
    }
}

impl Encode for CostType {
    fn encode(&self, w: &mut Writer) {
        w.u8(self.index() as u8);
    }
}

impl Decode for CostType {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let idx = r.u8("cost type")?;
        CostType::from_index(idx as usize).ok_or(CodecError::IndexOutOfRange {
            what: "cost type",
            index: idx as u64,
            limit: CostType::COUNT as u64,
        })
    }
}

impl Encode for EdgeWeights {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.distance_m);
        w.f64(self.travel_time_s);
        w.f64(self.fuel_ml);
    }
}

impl Decode for EdgeWeights {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let weights = EdgeWeights {
            distance_m: r.f64("edge distance")?,
            travel_time_s: r.f64("edge travel time")?,
            fuel_ml: r.f64("edge fuel")?,
        };
        // Mirror the builder's invariant (positive finite weights): no
        // decoded network may be one `RoadNetworkBuilder` could not produce,
        // or Dijkstra would silently return wrong or NaN distances.
        for cost in CostType::ALL {
            let v = weights.get(cost);
            if !(v.is_finite() && v > 0.0) {
                return Err(CodecError::Invalid(
                    "non-positive or non-finite edge weight",
                ));
            }
        }
        Ok(weights)
    }
}

impl Encode for Path {
    fn encode(&self, w: &mut Writer) {
        w.length(self.len());
        for v in self.vertices() {
            w.u32(v.0);
        }
    }
}

/// Decodes a path, validating every vertex id against `num_vertices`.
pub fn decode_path(r: &mut Reader<'_>, num_vertices: usize) -> Result<Path, CodecError> {
    let len = r.length("path length", 4)?;
    let mut vertices = Vec::with_capacity(len);
    for _ in 0..len {
        vertices.push(VertexId(r.index("path vertex", num_vertices)?));
    }
    Path::new(vertices).map_err(|_| CodecError::Invalid("empty path"))
}

/// Decodes a vertex id validated against `num_vertices`.
pub fn decode_vertex(r: &mut Reader<'_>, num_vertices: usize) -> Result<VertexId, CodecError> {
    Ok(VertexId(r.index("vertex id", num_vertices)?))
}

/// Wire size of one vertex record (two `f64` coordinates).
pub const VERTEX_WIRE_BYTES: usize = 16;

/// Wire size of one edge record (`from` + `to` + three weights + road type).
pub const EDGE_WIRE_BYTES: usize = 33;

impl Encode for RoadNetwork {
    fn encode(&self, w: &mut Writer) {
        // Vertex and edge ids equal their table index, so only the payload
        // fields travel; CSR adjacency and the bounding box are rebuilt on
        // decode by the exact code `RoadNetworkBuilder::build` runs.
        w.length(self.num_vertices());
        for v in self.vertices() {
            v.point.encode(w);
        }
        w.length(self.num_edges());
        for e in self.edges() {
            w.u32(e.from.0);
            w.u32(e.to.0);
            e.weights.encode(w);
            e.road_type.encode(w);
        }
    }
}

impl Decode for RoadNetwork {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let num_vertices = r.length("vertex count", 16)?;
        let mut vertices = Vec::with_capacity(num_vertices);
        for i in 0..num_vertices {
            vertices.push(Vertex {
                id: VertexId(i as u32),
                point: Point::decode(r)?,
            });
        }
        let num_edges = r.length("edge count", 33)?;
        let mut edges = Vec::with_capacity(num_edges);
        for i in 0..num_edges {
            let from = decode_vertex(r, num_vertices)?;
            let to = decode_vertex(r, num_vertices)?;
            let weights = EdgeWeights::decode(r)?;
            let road_type = RoadType::decode(r)?;
            if from == to {
                return Err(CodecError::Invalid("self-loop edge"));
            }
            edges.push(Edge {
                id: EdgeId(i as u32),
                from,
                to,
                weights,
                road_type,
            });
        }
        Ok(RoadNetwork::from_parts(vertices, edges))
    }
}

/// Splits `0..len` into contiguous chunks sized for [`l2r_par`] workers.
fn decode_chunks(len: usize) -> Vec<(usize, usize)> {
    // Below this many elements the spawn overhead outweighs the decode work.
    const MIN_CHUNK: usize = 8_192;
    let pieces = l2r_par::max_threads() * 4;
    let chunk = len.div_ceil(pieces.max(1)).max(MIN_CHUNK);
    let mut out = Vec::new();
    let mut start = 0;
    while start < len {
        let n = chunk.min(len - start);
        out.push((start, n));
        start += n;
    }
    out
}

/// Merges per-chunk decode results in chunk order, so on malformed input the
/// error of the lowest-indexed failing chunk is reported — deterministic
/// regardless of thread scheduling.
fn merge_chunks<T>(
    len: usize,
    chunks: Vec<Result<Vec<T>, CodecError>>,
) -> Result<Vec<T>, CodecError> {
    let mut out = Vec::with_capacity(len);
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

/// Decodes a road network from the exact wire form of
/// [`RoadNetwork::decode`], fanning the fixed-stride vertex and edge tables
/// across [`l2r_par`] workers.
///
/// Vertex records are 16 bytes and edge records 33 bytes on the wire, so the
/// tables can be sliced into independent chunks without a format change; the
/// per-record validation is byte-for-byte the same as the serial decoder and
/// the decoded network is identical (ids are positional).  Small tables fall
/// back to the serial path, as does a table that is truncated (so the serial
/// decoder's precise error surfaces).  The reader is left positioned exactly
/// where the serial decoder would leave it.
pub fn decode_network_parallel(r: &mut Reader<'_>) -> Result<RoadNetwork, CodecError> {
    // Peek the counts without consuming: on any shortfall, replay serially
    // from the saved position for identical error reporting.
    let table_start = r.pos;
    let num_vertices = r.length("vertex count", VERTEX_WIRE_BYTES)?;
    let vertex_bytes = num_vertices * VERTEX_WIRE_BYTES;
    if r.remaining() < vertex_bytes {
        r.pos = table_start;
        return RoadNetwork::decode(r);
    }
    let vertex_table = &r.buf[r.pos..r.pos + vertex_bytes];
    r.pos += vertex_bytes;
    let num_edges = r.length("edge count", EDGE_WIRE_BYTES)?;
    let edge_bytes = num_edges * EDGE_WIRE_BYTES;
    if r.remaining() < edge_bytes {
        r.pos = table_start;
        return RoadNetwork::decode(r);
    }
    let edge_table = &r.buf[r.pos..r.pos + edge_bytes];
    r.pos += edge_bytes;

    let vertex_chunks = decode_chunks(num_vertices);
    let vertices = merge_chunks(
        num_vertices,
        l2r_par::par_map(&vertex_chunks, |_, &(start, len)| {
            let mut rr = Reader::new(
                &vertex_table[start * VERTEX_WIRE_BYTES..(start + len) * VERTEX_WIRE_BYTES],
            );
            let mut out = Vec::with_capacity(len);
            for i in 0..len {
                out.push(Vertex {
                    id: VertexId((start + i) as u32),
                    point: Point::decode(&mut rr)?,
                });
            }
            Ok(out)
        }),
    )?;

    let edge_chunks = decode_chunks(num_edges);
    let edges = merge_chunks(
        num_edges,
        l2r_par::par_map(&edge_chunks, |_, &(start, len)| {
            let mut rr =
                Reader::new(&edge_table[start * EDGE_WIRE_BYTES..(start + len) * EDGE_WIRE_BYTES]);
            let mut out = Vec::with_capacity(len);
            for i in 0..len {
                let from = decode_vertex(&mut rr, num_vertices)?;
                let to = decode_vertex(&mut rr, num_vertices)?;
                let weights = EdgeWeights::decode(&mut rr)?;
                let road_type = RoadType::decode(&mut rr)?;
                if from == to {
                    return Err(CodecError::Invalid("self-loop edge"));
                }
                out.push(Edge {
                    id: EdgeId((start + i) as u32),
                    from,
                    to,
                    weights,
                    road_type,
                });
            }
            Ok(out)
        }),
    )?;

    Ok(RoadNetwork::from_parts(vertices, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    fn sample_net() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1000.0, 0.0));
        let v2 = b.add_vertex(Point::new(1000.0, 1000.0));
        b.add_two_way(v0, v1, RoadType::Primary).unwrap();
        b.add_two_way(v1, v2, RoadType::Residential).unwrap();
        b.add_edge(v0, v2, RoadType::Motorway).unwrap();
        b.build()
    }

    #[test]
    fn primitives_roundtrip_bit_exactly() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(r.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64("e").unwrap().is_nan());
        assert!(r.bool("f").unwrap());
        assert!(r.is_exhausted());
    }

    #[test]
    fn strings_and_bytes_roundtrip_and_reject_bad_input() {
        let mut w = Writer::new();
        w.str("D1");
        w.bytes(&[1, 2, 3]);
        w.str("");
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str("name", 64).unwrap(), "D1");
        assert_eq!(r.bytes("blob", 64).unwrap(), &[1, 2, 3]);
        assert_eq!(r.str("empty", 64).unwrap(), "");
        assert!(r.is_exhausted());

        // Length above the caller's cap is rejected before any read.
        let mut w = Writer::new();
        w.str("a-rather-long-name");
        let bytes = w.into_vec();
        assert!(matches!(
            Reader::new(&bytes).str("name", 4),
            Err(CodecError::ImplausibleLength { .. })
        ));
        // Length beyond the buffer is an EOF error.
        let mut w = Writer::new();
        w.u32(100);
        let bytes = w.into_vec();
        assert!(matches!(
            Reader::new(&bytes).bytes("blob", 1024),
            Err(CodecError::UnexpectedEof { .. })
        ));
        // Non-UTF-8 payload is invalid, not a panic.
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_vec();
        assert!(matches!(
            Reader::new(&bytes).str("name", 16),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(r.u64("x"), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn implausible_sequence_lengths_are_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 2); // a count no buffer can hold
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.length("huge", 4),
            Err(CodecError::ImplausibleLength { .. })
        ));
    }

    #[test]
    fn enums_and_sets_roundtrip_and_reject_bad_tags() {
        for rt in RoadType::ALL {
            let mut w = Writer::new();
            rt.encode(&mut w);
            let bytes = w.into_vec();
            assert_eq!(RoadType::decode(&mut Reader::new(&bytes)).unwrap(), rt);
        }
        for ct in CostType::ALL {
            let mut w = Writer::new();
            ct.encode(&mut w);
            let bytes = w.into_vec();
            assert_eq!(CostType::decode(&mut Reader::new(&bytes)).unwrap(), ct);
        }
        let set = RoadTypeSet::from_iter([RoadType::Motorway, RoadType::Tertiary]);
        let mut w = Writer::new();
        set.encode(&mut w);
        let bytes = w.into_vec();
        assert_eq!(RoadTypeSet::decode(&mut Reader::new(&bytes)).unwrap(), set);

        assert!(RoadType::decode(&mut Reader::new(&[99])).is_err());
        assert!(CostType::decode(&mut Reader::new(&[7])).is_err());
        assert!(RoadTypeSet::decode(&mut Reader::new(&[0b1100_0000])).is_err());
    }

    #[test]
    fn path_roundtrip_validates_vertices() {
        let p = Path::new(vec![VertexId(0), VertexId(3), VertexId(1)]).unwrap();
        let mut w = Writer::new();
        p.encode(&mut w);
        let bytes = w.into_vec();
        assert_eq!(decode_path(&mut Reader::new(&bytes), 4).unwrap(), p);
        // The same bytes against a smaller vertex table must error.
        assert!(matches!(
            decode_path(&mut Reader::new(&bytes), 3),
            Err(CodecError::IndexOutOfRange { .. })
        ));
        // An empty path is rejected.
        let mut w = Writer::new();
        w.length(0);
        let bytes = w.into_vec();
        assert!(decode_path(&mut Reader::new(&bytes), 4).is_err());
    }

    #[test]
    fn road_network_roundtrips_bit_identically() {
        let net = sample_net();
        let mut w = Writer::new();
        net.encode(&mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let decoded = RoadNetwork::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(decoded.num_vertices(), net.num_vertices());
        assert_eq!(decoded.num_edges(), net.num_edges());
        for (a, b) in net.vertices().iter().zip(decoded.vertices()) {
            assert_eq!(a, b);
        }
        for (a, b) in net.edges().iter().zip(decoded.edges()) {
            assert_eq!(a, b);
        }
        // CSR rebuild gives identical adjacency and derived state.
        for v in 0..net.num_vertices() as u32 {
            let orig: Vec<_> = net.neighbors(VertexId(v)).collect();
            let dec: Vec<_> = decoded.neighbors(VertexId(v)).collect();
            assert_eq!(orig, dec);
        }
        assert_eq!(net.bounding_box(), decoded.bounding_box());
        // Re-encoding the decoded network reproduces the exact bytes.
        let mut w2 = Writer::new();
        decoded.encode(&mut w2);
        assert_eq!(w2.into_vec(), bytes);
    }

    #[test]
    fn parallel_network_decode_matches_serial_bit_for_bit() {
        // Large enough that the chunked path actually splits the tables
        // when more than one worker is available.
        let mut b = RoadNetworkBuilder::new();
        let side = 110usize; // 12,100 vertices, ~48k directed edges
        for y in 0..side {
            for x in 0..side {
                b.add_vertex(Point::new(x as f64 * 90.0, y as f64 * 90.0));
            }
        }
        for y in 0..side {
            for x in 0..side {
                let v = VertexId((y * side + x) as u32);
                if x + 1 < side {
                    b.add_two_way(v, VertexId((y * side + x + 1) as u32), RoadType::Tertiary)
                        .unwrap();
                }
                if y + 1 < side {
                    b.add_two_way(v, VertexId(((y + 1) * side + x) as u32), RoadType::Primary)
                        .unwrap();
                }
            }
        }
        let net = b.build();
        let mut w = Writer::new();
        net.encode(&mut w);
        w.u64(0xFEED_FACE); // trailing data the decoder must not consume
        let bytes = w.into_vec();

        let mut serial_r = Reader::new(&bytes);
        let serial = RoadNetwork::decode(&mut serial_r).unwrap();
        let mut parallel_r = Reader::new(&bytes);
        let parallel = decode_network_parallel(&mut parallel_r).unwrap();

        // Both decoders consume exactly the same bytes.
        assert_eq!(serial_r.remaining(), parallel_r.remaining());
        assert_eq!(parallel_r.u64("trailer").unwrap(), 0xFEED_FACE);

        assert_eq!(serial.num_vertices(), parallel.num_vertices());
        assert_eq!(serial.num_edges(), parallel.num_edges());
        for (a, b) in serial.vertices().iter().zip(parallel.vertices()) {
            assert_eq!(a, b);
        }
        for (a, b) in serial.edges().iter().zip(parallel.edges()) {
            assert_eq!(a, b);
        }
        // Re-encoding reproduces the original bytes (minus the trailer).
        let mut w2 = Writer::new();
        parallel.encode(&mut w2);
        assert_eq!(w2.as_slice(), &bytes[..bytes.len() - 8]);
    }

    #[test]
    fn parallel_network_decode_rejects_malformed_input() {
        let net = sample_net();
        let mut w = Writer::new();
        net.encode(&mut w);
        let bytes = w.into_vec();
        // Truncations fall back to the serial decoder and must error.
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_network_parallel(&mut Reader::new(&bytes[..cut])).is_err(),
                "truncation at {cut} must error"
            );
        }
        // An out-of-range endpoint is rejected just like the serial path.
        let mut w = Writer::new();
        w.length(2);
        Point::new(0.0, 0.0).encode(&mut w);
        Point::new(10.0, 0.0).encode(&mut w);
        w.length(1);
        w.u32(5); // from: out of range
        w.u32(1);
        EdgeWeights::derive(10.0, RoadType::Primary).encode(&mut w);
        RoadType::Primary.encode(&mut w);
        let bytes = w.into_vec();
        assert!(matches!(
            decode_network_parallel(&mut Reader::new(&bytes)),
            Err(CodecError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn wire_stride_constants_match_the_encoder() {
        let net = sample_net();
        let mut w = Writer::new();
        net.encode(&mut w);
        // 8-byte vertex count + vertices + 8-byte edge count + edges.
        assert_eq!(
            w.len(),
            16 + net.num_vertices() * VERTEX_WIRE_BYTES + net.num_edges() * EDGE_WIRE_BYTES
        );
    }

    #[test]
    fn road_network_rejects_out_of_range_edge_endpoints() {
        // Handcrafted payload documenting the wire format: 2 vertices, then
        // 1 edge whose tail points at vertex 5.
        let mut w = Writer::new();
        w.length(2);
        Point::new(0.0, 0.0).encode(&mut w);
        Point::new(10.0, 0.0).encode(&mut w);
        w.length(1);
        w.u32(5); // from: out of range
        w.u32(1);
        EdgeWeights::derive(10.0, RoadType::Primary).encode(&mut w);
        RoadType::Primary.encode(&mut w);
        let bytes = w.into_vec();
        assert!(matches!(
            RoadNetwork::decode(&mut Reader::new(&bytes)),
            Err(CodecError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn road_network_rejects_non_positive_or_non_finite_weights() {
        for bad_distance in [f64::NAN, f64::INFINITY, 0.0, -5.0] {
            let mut w = Writer::new();
            w.length(2);
            Point::new(0.0, 0.0).encode(&mut w);
            Point::new(10.0, 0.0).encode(&mut w);
            w.length(1);
            w.u32(0);
            w.u32(1);
            // The builder forbids these weights; decode must too.
            w.f64(bad_distance);
            w.f64(1.0);
            w.f64(1.0);
            RoadType::Primary.encode(&mut w);
            let bytes = w.into_vec();
            assert!(
                matches!(
                    RoadNetwork::decode(&mut Reader::new(&bytes)),
                    Err(CodecError::Invalid(_))
                ),
                "distance {bad_distance} must be rejected"
            );
        }
    }

    #[test]
    fn road_network_rejects_self_loops() {
        let mut w = Writer::new();
        w.length(2);
        Point::new(0.0, 0.0).encode(&mut w);
        Point::new(10.0, 0.0).encode(&mut w);
        w.length(1);
        w.u32(1);
        w.u32(1); // self-loop
        EdgeWeights::derive(10.0, RoadType::Primary).encode(&mut w);
        RoadType::Primary.encode(&mut w);
        let bytes = w.into_vec();
        assert!(matches!(
            RoadNetwork::decode(&mut Reader::new(&bytes)),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn empty_network_roundtrips() {
        let net = RoadNetworkBuilder::new().build();
        let mut w = Writer::new();
        net.encode(&mut w);
        let bytes = w.into_vec();
        let decoded = RoadNetwork::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(decoded.num_vertices(), 0);
        assert_eq!(decoded.num_edges(), 0);
    }
}
