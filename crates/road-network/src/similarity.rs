//! Path similarity functions used by the paper's evaluation.
//!
//! * Equation 1 (Section V-A): shared-length similarity — the total length of
//!   edges shared between the ground-truth path and the constructed path,
//!   divided by the length of the ground-truth path.
//! * Equation 4 (Section VII-A): the same numerator divided by the length of
//!   the *union* of segments (a weighted Jaccard similarity).
//! * Figure 14: band matching of way-point polylines against a ground-truth
//!   path — used to compare against the external reference router whose
//!   output is a sparse sequence of coordinates rather than a road-network
//!   path.

use std::collections::HashMap;

use crate::graph::{RoadNetwork, VertexId};
use crate::path::Path;
use crate::spatial::{point_segment_distance, Point};

/// Sums the lengths of the segments (undirected vertex pairs) in `segments`.
fn total_length(net: &RoadNetwork, path: &Path) -> f64 {
    path.vertices()
        .windows(2)
        .map(|w| net.euclidean(w[0], w[1]))
        .sum()
}

/// Length of the segments shared between the two paths (undirected).
fn shared_length(net: &RoadNetwork, a: &Path, b: &Path) -> f64 {
    let set_b = b.segment_set();
    a.vertices()
        .windows(2)
        .filter(|w| {
            let key = if w[0] <= w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            set_b.contains(&key)
        })
        .map(|w| net.euclidean(w[0], w[1]))
        .sum()
}

/// Equation 1: `Σ len(shared edges) / Σ len(ground-truth edges)`.
///
/// Returns a value in `[0, 1]`; a trivial (single-vertex) ground truth yields
/// 1.0 when the candidate starts at that vertex and 0.0 otherwise.
pub fn path_similarity(net: &RoadNetwork, ground_truth: &Path, candidate: &Path) -> f64 {
    if ground_truth.is_trivial() {
        return if candidate.contains(ground_truth.source()) {
            1.0
        } else {
            0.0
        };
    }
    let gt_len = total_length(net, ground_truth);
    if gt_len <= 0.0 {
        return 0.0;
    }
    (shared_length(net, ground_truth, candidate) / gt_len).clamp(0.0, 1.0)
}

/// Precomputed Equation 1 view of a ground-truth path, for evaluating many
/// candidate paths against the same ground truth (the preference learner
/// scores every candidate preference against each observed path).
///
/// Building the segment weights and the total length once amortises the
/// per-comparison hash-set construction and length recomputation of
/// [`path_similarity`].
#[derive(Debug, Clone)]
pub struct OverlapIndex {
    /// Total ground-truth segment length summed per undirected segment key.
    weights: HashMap<(VertexId, VertexId), f64>,
    /// Total ground-truth length.
    gt_len: f64,
    /// Source vertex of a trivial (single-vertex) ground truth.
    trivial_source: Option<VertexId>,
}

impl OverlapIndex {
    /// Builds the index for `ground_truth`.
    pub fn new(net: &RoadNetwork, ground_truth: &Path) -> OverlapIndex {
        if ground_truth.is_trivial() {
            return OverlapIndex {
                weights: HashMap::new(),
                gt_len: 0.0,
                trivial_source: Some(ground_truth.source()),
            };
        }
        let mut weights: HashMap<(VertexId, VertexId), f64> = HashMap::new();
        let mut gt_len = 0.0;
        for w in ground_truth.vertices().windows(2) {
            let key = if w[0] <= w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            let len = net.euclidean(w[0], w[1]);
            *weights.entry(key).or_insert(0.0) += len;
            gt_len += len;
        }
        OverlapIndex {
            weights,
            gt_len,
            trivial_source: None,
        }
    }

    /// Equation 1 similarity of a candidate that visits no segment twice
    /// (Dijkstra-constructed paths always qualify: shortest-path trees never
    /// repeat a vertex).  Equals [`path_similarity`] on such candidates.
    pub fn similarity_to_simple(&self, candidate: &Path) -> f64 {
        if let Some(source) = self.trivial_source {
            return if candidate.contains(source) { 1.0 } else { 0.0 };
        }
        if self.gt_len <= 0.0 {
            return 0.0;
        }
        let mut shared = 0.0;
        for w in candidate.vertices().windows(2) {
            let key = if w[0] <= w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            if let Some(len) = self.weights.get(&key) {
                shared += len;
            }
        }
        (shared / self.gt_len).clamp(0.0, 1.0)
    }
}

/// Equation 4: `Σ len(shared edges) / Σ len(union of edges)` (weighted
/// Jaccard).  Always ≤ the Equation 1 similarity.
pub fn path_similarity_jaccard(net: &RoadNetwork, ground_truth: &Path, candidate: &Path) -> f64 {
    if ground_truth.is_trivial() && candidate.is_trivial() {
        return if ground_truth.source() == candidate.source() {
            1.0
        } else {
            0.0
        };
    }
    let shared = shared_length(net, ground_truth, candidate);
    let union = total_length(net, ground_truth) + total_length(net, candidate) - shared;
    if union <= 0.0 {
        return 0.0;
    }
    (shared / union).clamp(0.0, 1.0)
}

/// Band matching of a way-point polyline against a ground-truth path
/// (the Figure 14 methodology used for the Google Maps comparison).
///
/// A way-point is *matched* when it lies within `band_m` metres of the
/// ground-truth polyline.  When two consecutive way-points are matched, the
/// ground-truth edges lying between their projection points are counted as
/// matched.  The similarity is the matched ground-truth length divided by the
/// total ground-truth length (the Equation 1 form).
pub fn band_match_similarity(
    net: &RoadNetwork,
    ground_truth: &Path,
    waypoints: &[Point],
    band_m: f64,
) -> f64 {
    if ground_truth.is_trivial() || waypoints.len() < 2 {
        return 0.0;
    }
    let gt_points: Vec<Point> = ground_truth
        .vertices()
        .iter()
        .map(|v| net.vertex(*v).point)
        .collect();
    // Cumulative length of the ground-truth polyline at each vertex.
    let mut cum = vec![0.0f64; gt_points.len()];
    for i in 1..gt_points.len() {
        cum[i] = cum[i - 1] + gt_points[i - 1].distance(&gt_points[i]);
    }
    let total = cum[cum.len() - 1];
    if total <= 0.0 {
        return 0.0;
    }

    // Project each way-point onto the ground-truth polyline; record the
    // arc-length position when it is within the band.
    let project = |p: &Point| -> Option<f64> {
        let mut best: Option<(f64, f64)> = None; // (distance, arc position)
        for i in 0..gt_points.len() - 1 {
            let (d, t) = point_segment_distance(p, &gt_points[i], &gt_points[i + 1]);
            let arc = cum[i] + t * (cum[i + 1] - cum[i]);
            if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                best = Some((d, arc));
            }
        }
        best.and_then(|(d, arc)| if d <= band_m { Some(arc) } else { None })
    };

    let projections: Vec<Option<f64>> = waypoints.iter().map(project).collect();

    // Matched intervals between consecutive matched way-points.
    let mut intervals: Vec<(f64, f64)> = Vec::new();
    for w in projections.windows(2) {
        if let (Some(a), Some(b)) = (w[0], w[1]) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            if hi > lo {
                intervals.push((lo, hi));
            }
        }
    }
    if intervals.is_empty() {
        return 0.0;
    }
    // Merge overlapping intervals and sum their coverage.
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut covered = 0.0;
    let (mut cur_lo, mut cur_hi) = intervals[0];
    for &(lo, hi) in &intervals[1..] {
        if lo <= cur_hi {
            cur_hi = cur_hi.max(hi);
        } else {
            covered += cur_hi - cur_lo;
            cur_lo = lo;
            cur_hi = hi;
        }
    }
    covered += cur_hi - cur_lo;
    (covered / total).clamp(0.0, 1.0)
}

/// Convenience wrapper matching the signature used by the evaluation crate:
/// similarity of a way-point list produced for a `(source, destination)` pair
/// against the ground-truth path, with the paper's 10 m band.
pub fn band_match_similarity_10m(
    net: &RoadNetwork,
    ground_truth: &Path,
    waypoints: &[Point],
) -> f64 {
    band_match_similarity(net, ground_truth, waypoints, 10.0)
}

/// Helper used in several experiments: converts a road-network path into a
/// way-point polyline by taking each vertex position (optionally
/// down-sampled to every `stride`-th vertex, always keeping the endpoints).
pub fn path_to_waypoints(net: &RoadNetwork, path: &Path, stride: usize) -> Vec<Point> {
    let stride = stride.max(1);
    let vs = path.vertices();
    let mut out: Vec<Point> = Vec::new();
    for (i, v) in vs.iter().enumerate() {
        if i % stride == 0 || i == vs.len() - 1 {
            out.push(net.vertex(*v).point);
        }
    }
    out
}

/// Which of the two evaluation similarity functions to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityKind {
    /// Equation 1 (shared length over ground-truth length).
    SharedOverGroundTruth,
    /// Equation 4 (shared length over union length).
    WeightedJaccard,
}

impl SimilarityKind {
    /// Evaluates the chosen similarity.
    pub fn eval(self, net: &RoadNetwork, ground_truth: &Path, candidate: &Path) -> f64 {
        match self {
            SimilarityKind::SharedOverGroundTruth => path_similarity(net, ground_truth, candidate),
            SimilarityKind::WeightedJaccard => {
                path_similarity_jaccard(net, ground_truth, candidate)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RoadNetworkBuilder, VertexId};
    use crate::road_type::RoadType;
    use crate::spatial::Point;

    fn grid3x3() -> RoadNetwork {
        // 3x3 grid, vertex id = row * 3 + col, spacing 1 km.
        let mut b = RoadNetworkBuilder::new();
        for r in 0..3 {
            for c in 0..3 {
                b.add_vertex(Point::new(c as f64 * 1000.0, r as f64 * 1000.0));
            }
        }
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = VertexId(r * 3 + c);
                if c + 1 < 3 {
                    b.add_two_way(v, VertexId(r * 3 + c + 1), RoadType::Secondary)
                        .unwrap();
                }
                if r + 1 < 3 {
                    b.add_two_way(v, VertexId((r + 1) * 3 + c), RoadType::Secondary)
                        .unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn identical_paths_have_similarity_one() {
        let net = grid3x3();
        let p = Path::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(5)]).unwrap();
        assert!((path_similarity(&net, &p, &p) - 1.0).abs() < 1e-12);
        assert!((path_similarity_jaccard(&net, &p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_paths_have_similarity_zero() {
        let net = grid3x3();
        let a = Path::new(vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        let b = Path::new(vec![VertexId(6), VertexId(7), VertexId(8)]).unwrap();
        assert_eq!(path_similarity(&net, &a, &b), 0.0);
        assert_eq!(path_similarity_jaccard(&net, &a, &b), 0.0);
    }

    #[test]
    fn partial_overlap_is_proportional_to_shared_length() {
        let net = grid3x3();
        // Ground truth: bottom row 0-1-2 then up to 5 (3 edges of 1 km).
        let gt = Path::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(5)]).unwrap();
        // Candidate shares only edge 0-1 then diverges upward.
        let cand = Path::new(vec![VertexId(0), VertexId(1), VertexId(4), VertexId(5)]).unwrap();
        let sim = path_similarity(&net, &gt, &cand);
        assert!((sim - 1.0 / 3.0).abs() < 1e-9);
        // Jaccard: shared 1 km, union 3 + 3 - 1 = 5 km.
        let j = path_similarity_jaccard(&net, &gt, &cand);
        assert!((j - 0.2).abs() < 1e-9);
        // Eq 4 is never larger than Eq 1 (union ≥ ground-truth length).
        assert!(j <= sim + 1e-12);
    }

    #[test]
    fn direction_insensitivity() {
        let net = grid3x3();
        let gt = Path::new(vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        let rev = gt.reversed();
        assert!((path_similarity(&net, &gt, &rev) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_ground_truth() {
        let net = grid3x3();
        let gt = Path::single(VertexId(4));
        let through = Path::new(vec![VertexId(3), VertexId(4), VertexId(5)]).unwrap();
        let away = Path::new(vec![VertexId(0), VertexId(1)]).unwrap();
        assert_eq!(path_similarity(&net, &gt, &through), 1.0);
        assert_eq!(path_similarity(&net, &gt, &away), 0.0);
    }

    #[test]
    fn band_matching_full_coverage_for_dense_waypoints_on_path() {
        let net = grid3x3();
        let gt = Path::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(5)]).unwrap();
        let wps = path_to_waypoints(&net, &gt, 1);
        let sim = band_match_similarity_10m(&net, &gt, &wps);
        assert!((sim - 1.0).abs() < 1e-9, "sim = {}", sim);
    }

    #[test]
    fn band_matching_rejects_far_waypoints() {
        let net = grid3x3();
        let gt = Path::new(vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        // Way-points 500 m north of the path: outside a 10 m band.
        let wps = vec![
            Point::new(0.0, 500.0),
            Point::new(1000.0, 500.0),
            Point::new(2000.0, 500.0),
        ];
        assert_eq!(band_match_similarity_10m(&net, &gt, &wps), 0.0);
        // ... but inside a 600 m band.
        assert!(band_match_similarity(&net, &gt, &wps, 600.0) > 0.9);
    }

    #[test]
    fn band_matching_partial_coverage() {
        let net = grid3x3();
        let gt = Path::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(5)]).unwrap();
        // Way-points only cover the first kilometre of the 3 km ground truth.
        let wps = vec![Point::new(0.0, 2.0), Point::new(1000.0, 2.0)];
        let sim = band_match_similarity_10m(&net, &gt, &wps);
        assert!((sim - 1.0 / 3.0).abs() < 0.02, "sim = {}", sim);
    }

    #[test]
    fn waypoint_downsampling_keeps_endpoints() {
        let net = grid3x3();
        let gt = Path::new(vec![
            VertexId(0),
            VertexId(1),
            VertexId(2),
            VertexId(5),
            VertexId(8),
        ])
        .unwrap();
        let wps = path_to_waypoints(&net, &gt, 3);
        assert_eq!(wps.first().copied(), Some(net.vertex(VertexId(0)).point));
        assert_eq!(wps.last().copied(), Some(net.vertex(VertexId(8)).point));
        assert!(wps.len() < gt.len());
    }

    #[test]
    fn overlap_index_matches_path_similarity() {
        let net = grid3x3();
        let gt = Path::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(5)]).unwrap();
        let index = OverlapIndex::new(&net, &gt);
        let candidates = [
            Path::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(5)]).unwrap(),
            Path::new(vec![VertexId(0), VertexId(1), VertexId(4), VertexId(5)]).unwrap(),
            Path::new(vec![VertexId(6), VertexId(7), VertexId(8)]).unwrap(),
            gt.reversed(),
        ];
        for cand in &candidates {
            assert!(
                (index.similarity_to_simple(cand) - path_similarity(&net, &gt, cand)).abs() < 1e-12
            );
        }
        // Trivial ground truth handling matches too.
        let trivial = Path::single(VertexId(4));
        let tindex = OverlapIndex::new(&net, &trivial);
        for cand in &candidates {
            assert_eq!(
                tindex.similarity_to_simple(cand),
                path_similarity(&net, &trivial, cand)
            );
        }
    }

    #[test]
    fn similarity_kind_dispatch() {
        let net = grid3x3();
        let gt = Path::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(5)]).unwrap();
        let cand = Path::new(vec![VertexId(0), VertexId(1), VertexId(4), VertexId(5)]).unwrap();
        let eq1 = SimilarityKind::SharedOverGroundTruth.eval(&net, &gt, &cand);
        let eq4 = SimilarityKind::WeightedJaccard.eval(&net, &gt, &cand);
        assert!(eq1 > eq4);
    }
}
