//! Paths: vertex sequences where consecutive vertices are connected by edges
//! (Section III of the paper).

use std::collections::HashSet;

use crate::error::NetworkError;
use crate::graph::{EdgeId, RoadNetwork, VertexId};
use crate::weights::CostType;

/// A path `P = ⟨v1, v2, …, va⟩` in the road network.
///
/// A path owns only the vertex sequence; all cost and validity queries take
/// the network they refer to.  A path with a single vertex is allowed (it
/// represents "stay where you are") and has zero cost.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    vertices: Vec<VertexId>,
}

impl Path {
    /// Creates a path from a vertex sequence.
    ///
    /// Returns an error for an empty sequence; connectivity is *not* checked
    /// here (use [`Path::validate`]) because callers frequently build paths
    /// incrementally from algorithms that guarantee connectivity.
    pub fn new(vertices: Vec<VertexId>) -> Result<Self, NetworkError> {
        if vertices.is_empty() {
            return Err(NetworkError::EmptyPath);
        }
        Ok(Path { vertices })
    }

    /// A single-vertex path.
    pub fn single(v: VertexId) -> Self {
        Path { vertices: vec![v] }
    }

    /// The vertex sequence.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the path consists of a single vertex.
    pub fn is_trivial(&self) -> bool {
        self.vertices.len() == 1
    }

    /// Never true: constructors reject empty paths.  Provided for iterator
    /// ergonomics.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// First vertex.
    pub fn source(&self) -> VertexId {
        self.vertices[0]
    }

    /// Last vertex.
    pub fn destination(&self) -> VertexId {
        *self.vertices.last().expect("paths are never empty")
    }

    /// Checks that every consecutive vertex pair is connected by an edge in
    /// `net`, and that all vertices exist.
    pub fn validate(&self, net: &RoadNetwork) -> Result<(), NetworkError> {
        for v in &self.vertices {
            net.try_vertex(*v)?;
        }
        for w in self.vertices.windows(2) {
            if net.edge_between(w[0], w[1]).is_none() {
                return Err(NetworkError::Disconnected(w[0], w[1]));
            }
        }
        Ok(())
    }

    /// The edge ids traversed by the path, in order.
    pub fn edge_ids(&self, net: &RoadNetwork) -> Result<Vec<EdgeId>, NetworkError> {
        let mut edges = Vec::with_capacity(self.vertices.len().saturating_sub(1));
        for w in self.vertices.windows(2) {
            let e = net
                .edge_between(w[0], w[1])
                .ok_or(NetworkError::Disconnected(w[0], w[1]))?;
            edges.push(e);
        }
        Ok(edges)
    }

    /// The set of undirected vertex pairs traversed, used by the path
    /// similarity functions.  Each pair is normalised so `(a, b)` and
    /// `(b, a)` compare equal — the similarity of a path against a trajectory
    /// driven in the same corridor should not depend on edge direction.
    pub fn segment_set(&self) -> HashSet<(VertexId, VertexId)> {
        self.vertices
            .windows(2)
            .map(|w| {
                if w[0] <= w[1] {
                    (w[0], w[1])
                } else {
                    (w[1], w[0])
                }
            })
            .collect()
    }

    /// Total cost of the path under `cost`; zero for a trivial path.
    pub fn cost(&self, net: &RoadNetwork, cost: CostType) -> Result<f64, NetworkError> {
        let mut total = 0.0;
        for e in self.edge_ids(net)? {
            total += net.edge(e).cost(cost);
        }
        Ok(total)
    }

    /// Total length of the path in metres; zero for a trivial path.
    pub fn length_m(&self, net: &RoadNetwork) -> Result<f64, NetworkError> {
        self.cost(net, CostType::Distance)
    }

    /// Concatenates `self` with `other`.
    ///
    /// If `self` ends where `other` starts the junction vertex is not
    /// duplicated; otherwise the sequences are joined as-is (the result may
    /// then fail [`Path::validate`], which is intentional — the caller is
    /// responsible for supplying joinable pieces).
    pub fn concat(&self, other: &Path) -> Path {
        let mut vertices = self.vertices.clone();
        let mut rest = other.vertices.as_slice();
        if self.destination() == other.source() {
            rest = &rest[1..];
        }
        vertices.extend_from_slice(rest);
        Path { vertices }
    }

    /// Returns the sub-path between the first occurrence of `from` and the
    /// first occurrence of `to` after it, if both are present in order.
    pub fn subpath(&self, from: VertexId, to: VertexId) -> Option<Path> {
        let start = self.vertices.iter().position(|v| *v == from)?;
        let end = self.vertices[start..].iter().position(|v| *v == to)? + start;
        Some(Path {
            vertices: self.vertices[start..=end].to_vec(),
        })
    }

    /// Whether the path visits `v`.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// Reversed copy of the path.
    pub fn reversed(&self) -> Path {
        let mut vertices = self.vertices.clone();
        vertices.reverse();
        Path { vertices }
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ids: Vec<String> = self.vertices.iter().map(|v| v.0.to_string()).collect();
        write!(f, "⟨{}⟩", ids.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use crate::road_type::RoadType;
    use crate::spatial::Point;

    fn line_network(n: usize) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let vs: Vec<VertexId> = (0..n)
            .map(|i| b.add_vertex(Point::new(i as f64 * 1000.0, 0.0)))
            .collect();
        for w in vs.windows(2) {
            b.add_two_way(w[0], w[1], RoadType::Secondary).unwrap();
        }
        b.build()
    }

    #[test]
    fn construction_and_accessors() {
        assert!(Path::new(vec![]).is_err());
        let p = Path::new(vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.source(), VertexId(0));
        assert_eq!(p.destination(), VertexId(2));
        assert!(!p.is_trivial());
        assert!(Path::single(VertexId(5)).is_trivial());
        assert!(p.contains(VertexId(1)));
        assert!(!p.contains(VertexId(9)));
    }

    #[test]
    fn validation_and_costs() {
        let net = line_network(4);
        let good = Path::new(vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        assert!(good.validate(&net).is_ok());
        assert!((good.length_m(&net).unwrap() - 2000.0).abs() < 1e-9);
        assert!(good.cost(&net, CostType::TravelTime).unwrap() > 0.0);

        let bad = Path::new(vec![VertexId(0), VertexId(2)]).unwrap();
        assert!(matches!(
            bad.validate(&net),
            Err(NetworkError::Disconnected(_, _))
        ));
        assert!(bad.length_m(&net).is_err());

        let unknown = Path::new(vec![VertexId(99)]).unwrap();
        assert!(unknown.validate(&net).is_err());
    }

    #[test]
    fn trivial_path_has_zero_cost() {
        let net = line_network(2);
        let p = Path::single(VertexId(0));
        assert_eq!(p.length_m(&net).unwrap(), 0.0);
        assert!(p.edge_ids(&net).unwrap().is_empty());
    }

    #[test]
    fn concat_merges_shared_junction() {
        let a = Path::new(vec![VertexId(0), VertexId(1)]).unwrap();
        let b = Path::new(vec![VertexId(1), VertexId(2)]).unwrap();
        let joined = a.concat(&b);
        assert_eq!(joined.vertices(), &[VertexId(0), VertexId(1), VertexId(2)]);

        let c = Path::new(vec![VertexId(5), VertexId(6)]).unwrap();
        let disjoint = a.concat(&c);
        assert_eq!(disjoint.len(), 4);
    }

    #[test]
    fn subpath_extraction() {
        let p = Path::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]).unwrap();
        let sub = p.subpath(VertexId(1), VertexId(3)).unwrap();
        assert_eq!(sub.vertices(), &[VertexId(1), VertexId(2), VertexId(3)]);
        assert!(p.subpath(VertexId(3), VertexId(1)).is_none());
        assert!(p.subpath(VertexId(9), VertexId(1)).is_none());
        // from == to yields a trivial sub-path.
        let sub = p.subpath(VertexId(2), VertexId(2)).unwrap();
        assert!(sub.is_trivial());
    }

    #[test]
    fn segment_set_is_direction_insensitive() {
        let a = Path::new(vec![VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        let b = a.reversed();
        assert_eq!(a.segment_set(), b.segment_set());
        assert_eq!(a.segment_set().len(), 2);
    }

    #[test]
    fn display_formats_vertices() {
        let p = Path::new(vec![VertexId(3), VertexId(7)]).unwrap();
        assert_eq!(p.to_string(), "⟨3, 7⟩");
    }
}
