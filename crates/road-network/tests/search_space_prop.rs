//! Property tests for the reusable [`SearchSpace`]: on random networks, a
//! search space reused across many queries must return exactly the same
//! costs and paths as a freshly allocated space per query (the generation
//! stamping must never leak state between searches), and the one-to-many
//! search must agree with individual single-target searches.

use proptest::prelude::*;

use l2r_road_network::{
    CostType, Path, Point, RoadNetwork, RoadNetworkBuilder, RoadType, RoadTypeSet, SearchSpace,
    VertexId,
};

const ROAD_TYPES: [RoadType; 4] = [
    RoadType::Motorway,
    RoadType::Primary,
    RoadType::Tertiary,
    RoadType::Residential,
];

/// Builds a random network from a vertex count and raw edge pairs (invalid
/// pairs — self loops, out-of-range endpoints — are skipped, so any input
/// yields a valid, possibly disconnected network).
fn build_network(num_vertices: u32, edges: &[(u32, u32, usize)]) -> RoadNetwork {
    let mut b = RoadNetworkBuilder::new();
    for i in 0..num_vertices {
        // Spread the vertices on a deterministic pseudo-grid.
        let x = f64::from(i % 7) * 900.0 + f64::from(i) * 13.0;
        let y = f64::from(i / 7) * 1100.0 + f64::from(i % 3) * 70.0;
        b.add_vertex(Point::new(x, y));
    }
    for (from, to, rt) in edges {
        let (from, to) = (from % num_vertices, to % num_vertices);
        if from == to {
            continue;
        }
        let road_type = ROAD_TYPES[rt % ROAD_TYPES.len()];
        b.add_two_way(VertexId(from), VertexId(to), road_type)
            .expect("in-range, non-loop edge");
    }
    b.build()
}

fn fresh_query(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
    cost: CostType,
) -> (Option<f64>, Option<Path>) {
    let mut space = SearchSpace::new();
    space.dijkstra(net, source, Some(target), |e| e.cost(cost));
    (space.cost_to(target), space.path_to(target))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A reused search space answers a sequence of random queries exactly
    /// like a fresh allocation per query.
    #[test]
    fn reused_space_matches_fresh_space(
        num_vertices in 2u32..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40, 0usize..4), 1..120),
        queries in proptest::collection::vec((0u32..40, 0u32..40, 0usize..3), 1..12),
    ) {
        let net = build_network(num_vertices, &edges);
        let mut reused = SearchSpace::new();
        for (s, t, c) in &queries {
            let source = VertexId(s % num_vertices);
            let target = VertexId(t % num_vertices);
            let cost = CostType::ALL[c % CostType::ALL.len()];
            let (fresh_cost, fresh_path) = fresh_query(&net, source, target, cost);
            reused.dijkstra(&net, source, Some(target), |e| e.cost(cost));
            prop_assert_eq!(reused.cost_to(target), fresh_cost);
            prop_assert_eq!(reused.path_to(target), fresh_path);
        }
    }

    /// One one-to-many search agrees with individual single-target searches
    /// for every target, on the same reused space.
    #[test]
    fn to_many_matches_single_target_searches(
        num_vertices in 2u32..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30, 0usize..4), 1..90),
        source in 0u32..30,
        targets in proptest::collection::vec(0u32..30, 1..8),
    ) {
        let net = build_network(num_vertices, &edges);
        let source = VertexId(source % num_vertices);
        let targets: Vec<VertexId> = targets.iter().map(|t| VertexId(t % num_vertices)).collect();
        let mut space = SearchSpace::new();
        space.dijkstra_to_many(&net, source, &targets, |e| e.cost(CostType::TravelTime));
        let many: Vec<(Option<f64>, Option<Path>)> = targets
            .iter()
            .map(|t| (space.cost_to(*t), space.path_to(*t)))
            .collect();
        for (i, t) in targets.iter().enumerate() {
            let (cost, path) = fresh_query(&net, source, *t, CostType::TravelTime);
            prop_assert_eq!(&many[i].0, &cost);
            prop_assert_eq!(&many[i].1, &path);
        }
    }

    /// The constrained search through a reused space matches the free
    /// compatibility function (which allocates via the thread-local space).
    #[test]
    fn constrained_reuse_matches_free_function(
        num_vertices in 2u32..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30, 0usize..4), 1..90),
        queries in proptest::collection::vec((0u32..30, 0u32..30, 0usize..4), 1..8),
    ) {
        let net = build_network(num_vertices, &edges);
        let mut reused = SearchSpace::new();
        for (s, t, rt) in &queries {
            let source = VertexId(s % num_vertices);
            let target = VertexId(t % num_vertices);
            let slave = Some(RoadTypeSet::single(ROAD_TYPES[rt % ROAD_TYPES.len()]));
            let expected = l2r_road_network::preference_constrained_path(
                &net, source, target, CostType::Distance, slave,
            );
            let got = reused.preference_constrained_path(
                &net, source, target, CostType::Distance, slave,
            );
            prop_assert_eq!(got, expected);
        }
    }
}
