//! Sparse transfer: the core idea of the paper in isolation.
//!
//! Routing preferences are learned on region pairs *covered* by trajectories
//! (T-edges) and transferred to region pairs *not covered* by any trajectory
//! (B-edges) via graph-based transduction over region-edge similarity.  This
//! example prints what was learned, what was transferred and how the
//! transferred preferences change the recommended paths relative to plain
//! fastest-path routing.
//!
//! Run with:
//! ```sh
//! cargo run --release --example sparse_transfer
//! ```

use std::collections::HashMap;

use l2r_suite::preference::Preference;
use l2r_suite::prelude::*;

fn main() {
    let city = generate_network(&SyntheticNetworkConfig::tiny());
    let workload = generate_workload(&city, &WorkloadConfig::tiny(350));
    let (train, _) = workload.temporal_split(0.85);
    let model = L2r::fit(&city.net, &train, L2rConfig::default()).expect("fit");

    // What was learned on T-edges.
    println!("== learned preferences on trajectory-covered region pairs (T-edges) ==");
    let mut master_counts: HashMap<CostType, usize> = HashMap::new();
    for lp in model.learned_preferences().values() {
        *master_counts.entry(lp.preference.master).or_default() += 1;
    }
    for cost in [CostType::Distance, CostType::TravelTime, CostType::Fuel] {
        println!(
            "  master {}: {} T-edges",
            cost,
            master_counts.get(&cost).copied().unwrap_or(0)
        );
    }

    // What was transferred to B-edges.
    println!("\n== transferred preferences on uncovered region pairs (B-edges) ==");
    let transferred: Vec<(&_, &Option<Preference>)> =
        model.transferred_preferences().iter().collect();
    let assigned = transferred.iter().filter(|(_, p)| p.is_some()).count();
    println!(
        "  {} B-edges, {} received a preference, {} fall back to fastest paths",
        transferred.len(),
        assigned,
        transferred.len() - assigned
    );
    for (id, pref) in transferred.iter().take(6) {
        match pref {
            Some(p) => println!("  B-edge {:?}: {}", id, p),
            None => println!("  B-edge {:?}: null (fastest-path fallback)", id),
        }
    }

    // How the transfer changes routing on an uncovered pair: pick a B-edge
    // with a non-null preference and compare its attached path against the
    // plain fastest path between the same endpoints.
    println!("\n== effect on routing across an uncovered region pair ==");
    let rg = model.region_graph();
    let mut shown = 0;
    for edge in rg.b_edges() {
        if shown >= 3 {
            break;
        }
        let Some(sp) = edge.paths.first() else {
            continue;
        };
        let (s, d) = (sp.path.source(), sp.path.destination());
        let Some(fast) = fastest_path(&city.net, s, d) else {
            continue;
        };
        let same = fast == sp.path;
        println!(
            "  B-edge {:?}: preference path has {} vertices, fastest has {} ({}, overlap {:.0}%)",
            edge.id,
            sp.path.len(),
            fast.len(),
            if same { "identical" } else { "different" },
            path_similarity(&city.net, &fast, &sp.path) * 100.0
        );
        shown += 1;
    }

    println!("\ndone");
}
