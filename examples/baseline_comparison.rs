//! Baseline comparison: the Figure 10/12-style evaluation on one workload.
//!
//! L2R is compared against Shortest, Fastest, Dom and TRIP on held-out
//! trajectories: accuracy against the driver-chosen ground-truth paths
//! (Equations 1 and 4) and mean online running time, bucketed by travel
//! distance and by region coverage.
//!
//! Run with:
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use l2r_suite::eval::{
    build_dataset, build_test_queries, compare_methods, report_accuracy, report_runtime,
    DatasetSpec, Method, Scale,
};
use l2r_suite::prelude::*;

fn main() {
    // The D1-like (Denmark) dataset at quick scale; switch to Scale::Full for
    // the benchmark-sized run.
    let ds = build_dataset(DatasetSpec::d1(Scale::Quick));
    println!(
        "dataset {}: {} vertices, {} trajectories ({} train / {} test), {} regions",
        ds.spec.name,
        ds.synthetic.net.num_vertices(),
        ds.workload.trajectories.len(),
        ds.train.len(),
        ds.test.len(),
        ds.model.stats().num_regions
    );

    let queries = build_test_queries(
        &ds.synthetic.net,
        &ds.model,
        &ds.test,
        ds.spec.max_test_queries,
    );
    println!("evaluating {} held-out queries\n", queries.len());

    let dom = Dom::train(&ds.synthetic.net, &ds.train);
    let trip = Trip::train(&ds.synthetic.net, &ds.train);
    let methods = vec![
        Method::L2r(&ds.model),
        Method::Baseline(&ShortestRouter),
        Method::Baseline(&FastestRouter),
        Method::Baseline(&dom),
        Method::Baseline(&trip),
    ];
    let results = compare_methods(
        &ds.synthetic.net,
        &methods,
        &queries,
        &ds.spec.distance_bounds_km,
    );

    print!(
        "{}",
        report_accuracy("Accuracy (Eq. 1) by distance", &results, false, false)
    );
    print!(
        "{}",
        report_accuracy("Accuracy (Eq. 1) by region coverage", &results, true, false)
    );
    print!(
        "{}",
        report_accuracy("Accuracy (Eq. 4) by distance", &results, false, true)
    );
    print!(
        "{}",
        report_runtime("Mean online running time (µs) by distance", &results, false)
    );

    // A one-line take-away mirroring the paper's headline result.
    let l2r = results.iter().find(|r| r.name == "L2R").unwrap();
    let best_baseline = results
        .iter()
        .filter(|r| r.name != "L2R")
        .max_by(|a, b| a.overall.accuracy_eq1.total_cmp(&b.overall.accuracy_eq1))
        .unwrap();
    println!(
        "L2R overall accuracy {:.1}% vs best baseline {} at {:.1}%",
        l2r.overall.accuracy_eq1, best_baseline.name, best_baseline.overall.accuracy_eq1
    );
}
