//! Quickstart: build a synthetic city, generate a sparse trajectory workload,
//! fit learn-to-route and answer a few routing queries.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use l2r_suite::prelude::*;

fn main() {
    // 1. A synthetic city with a road hierarchy and functional districts
    //    (substituting the OpenStreetMap extracts of the paper).
    let city = generate_network(&SyntheticNetworkConfig::tiny());
    println!(
        "city: {} vertices, {} edges, {} districts",
        city.net.num_vertices(),
        city.net.num_edges(),
        city.districts.len()
    );

    // 2. A sparse trajectory workload from a synthetic driver population.
    let workload = generate_workload(&city, &WorkloadConfig::tiny(400));
    let (train, test) = workload.temporal_split(0.8);
    println!(
        "workload: {} trajectories ({} train / {} test), {} covered district pairs",
        workload.trajectories.len(),
        train.len(),
        test.len(),
        workload.latent.len()
    );

    // 3. Fit the learn-to-route model: clustering -> region graph ->
    //    preference learning -> transfer -> path assignment for B-edges.
    let model = L2r::fit(&city.net, &train, L2rConfig::default()).expect("fit");
    let stats = model.stats();
    println!(
        "model: {} regions, {} T-edges, {} B-edges, transfer null-rate {:.1}%",
        stats.num_regions,
        stats.num_t_edges,
        stats.num_b_edges,
        stats.null_rate * 100.0
    );

    // 4. Answer a few held-out queries and compare against the paths the
    //    drivers actually took (and the plain shortest path).
    println!(
        "\n{:<10} {:>12} {:>12} {:>14}",
        "query", "L2R sim", "Shortest sim", "coverage"
    );
    for (i, t) in test.iter().take(8).enumerate() {
        let (s, d) = (t.source(), t.destination());
        let Some(route) = model.route(s, d) else {
            continue;
        };
        let l2r_sim = path_similarity(&city.net, &t.path, &route.path);
        let short_sim = shortest_path(&city.net, s, d)
            .map(|p| path_similarity(&city.net, &t.path, &p))
            .unwrap_or(0.0);
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>14?}",
            format!("#{i}"),
            l2r_sim * 100.0,
            short_sim * 100.0,
            model.coverage(s, d)
        );
    }

    println!("\ndone — see `cargo run --release -p l2r-bench --bin reproduce` for the full paper reproduction");
}
