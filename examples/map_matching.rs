//! Map matching: from raw, noisy GPS records to road-network paths.
//!
//! The paper's pipeline starts from map-matched trajectories (its reference
//! [29]).  This example simulates a high-frequency and a low-frequency GPS
//! trace along known routes — mirroring the D1 (1 Hz) and D2 (0.03–0.1 Hz)
//! data sets — runs the HMM map matcher on both, and reports how well the
//! driven path is recovered.
//!
//! Run with:
//! ```sh
//! cargo run --release --example map_matching
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use l2r_suite::prelude::*;
use l2r_suite::trajectory::{simulate_gps_trace, DriverId, GpsSimulationConfig, TrajectoryId};

fn main() {
    let city = generate_network(&SyntheticNetworkConfig::tiny());
    let matcher = MapMatcher::with_defaults(&city.net);
    let mut rng = StdRng::seed_from_u64(2024);

    // Drive between a handful of district pairs and try to recover each path
    // from its simulated GPS trace.
    let presets = [
        (
            "high-frequency (D1-like, 1 Hz)",
            GpsSimulationConfig::high_frequency(),
        ),
        (
            "low-frequency (D2-like, ~1/15 Hz)",
            GpsSimulationConfig::low_frequency(),
        ),
    ];
    for (label, config) in presets {
        println!("== {label} ==");
        let mut total_sim = 0.0;
        let mut n = 0;
        for (i, (a, b)) in city
            .districts
            .iter()
            .zip(city.districts.iter().rev())
            .take(5)
            .enumerate()
        {
            if a.index == b.index {
                continue;
            }
            let Some(driven) = fastest_path(&city.net, a.center, b.center) else {
                continue;
            };
            let Some(trace) = simulate_gps_trace(
                &city.net,
                &driven,
                TrajectoryId(i as u32),
                DriverId(0),
                0.0,
                &config,
                &mut rng,
            ) else {
                continue;
            };
            let Some(matched) = matcher.match_trajectory(&trace) else {
                println!("  trip {i}: could not be matched");
                continue;
            };
            let sim = path_similarity(&city.net, &driven, &matched.path);
            total_sim += sim;
            n += 1;
            println!(
                "  trip {i}: {} GPS fixes over {:.1} km -> recovered {:.1}% of the driven path",
                trace.len(),
                driven.length_m(&city.net).unwrap() / 1000.0,
                sim * 100.0
            );
        }
        if n > 0 {
            println!("  mean recovery: {:.1}%\n", total_sim / n as f64 * 100.0);
        }
    }
}
