//! Snapshot round-trip: fit once, save the model, load it back and serve —
//! the offline/online split of the paper made durable across processes.
//!
//! Run with (the optional argument overrides the snapshot path):
//! ```sh
//! cargo run --release --example snapshot_roundtrip -- target/snapshot_roundtrip.l2r
//! ```
//!
//! The example exits non-zero if any query answered by the loaded model
//! differs from the never-serialized original, so it doubles as an
//! executable equivalence check (CI runs it on the quick-scale D1 dataset
//! and uploads the produced `.l2r` file next to the bench reports).

use std::path::PathBuf;
use std::time::Instant;

use l2r_suite::eval::{build_dataset, DatasetSpec, Scale};
use l2r_suite::prelude::*;

fn main() {
    let path: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/snapshot_roundtrip.l2r".to_string())
        .into();

    // 1. Pay the offline cost once: the quick-scale D1 experiment dataset.
    let t0 = Instant::now();
    let ds = build_dataset(DatasetSpec::d1(Scale::Quick));
    println!(
        "fit: {} regions / {} region edges in {:.1} ms",
        ds.model.stats().num_regions,
        ds.model.region_graph().num_edges(),
        t0.elapsed().as_secs_f64() * 1000.0
    );

    // 2. Persist the fitted model.
    let t0 = Instant::now();
    let bytes = save_model(&ds.model, &path).expect("snapshot save");
    println!(
        "save: {} ({:.1} KiB) in {:.1} ms",
        path.display(),
        bytes as f64 / 1024.0,
        t0.elapsed().as_secs_f64() * 1000.0
    );

    // 3. Load it back and compile — `Engine::load` is all a serving process
    //    does to go from a `.l2r` file to an owned, shareable engine.
    let t0 = Instant::now();
    let engine = Engine::load(&path).expect("snapshot load");
    println!(
        "load + compile: {:.1} ms ({} connectors)",
        t0.elapsed().as_secs_f64() * 1000.0,
        engine.num_connectors()
    );

    // 4. Verify the engine built off disk routes bit-identically to the
    //    never-serialized original across a sweep of vertex pairs.
    let mut scratch = QueryScratch::new();
    let n = ds.synthetic.net.num_vertices() as u32;
    let mut compared = 0usize;
    let mut answered = 0usize;
    let mut mismatches = 0usize;
    for i in (0..n).step_by(5) {
        for j in (1..n).step_by(9) {
            if i == j {
                continue;
            }
            let (s, d) = (VertexId(i), VertexId(j));
            let original = ds.model.route(s, d);
            let from_snapshot = engine.route(&mut scratch, s, d);
            compared += 1;
            answered += original.is_some() as usize;
            if original != from_snapshot {
                eprintln!("MISMATCH on {s:?} -> {d:?}");
                mismatches += 1;
            }
        }
    }
    println!("route: {compared} pairs compared, {answered} answered, {mismatches} mismatches");
    if mismatches > 0 {
        std::process::exit(1);
    }
    println!(
        "\nfit → save → load → route is bit-identical — serve from {}",
        path.display()
    );
}
