//! # l2r-suite
//!
//! Umbrella crate of the **learn-to-route (L2R)** reproduction of
//! *"Learning to Route with Sparse Trajectory Sets"* (Guo, Yang, Hu, Jensen —
//! IEEE ICDE 2018).
//!
//! It re-exports the individual crates under stable module names and hosts
//! the runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).  Library users normally depend on the individual crates
//! (`l2r-core`, `l2r-road-network`, …); this crate is the convenient
//! one-stop entry point used by the examples, the documentation and the
//! benchmark harness.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`road_network`] | `l2r-road-network` | graph, weights, Dijkstra variants, skyline, path similarity |
//! | [`trajectory`] | `l2r-trajectory` | GPS records, simulation, HMM map matching, statistics |
//! | [`datagen`] | `l2r-datagen` | synthetic networks, latent preferences, workloads |
//! | [`region_graph`] | `l2r-region-graph` | modularity clustering, region graph (T-/B-edges) |
//! | [`preference`] | `l2r-preference` | preference model, learning, transduction transfer |
//! | [`core`] | `l2r-core` | the L2R pipeline and unified router |
//! | [`baselines`] | `l2r-baselines` | Shortest, Fastest, Dom, TRIP, external reference router |
//! | [`eval`] | `l2r-eval` | datasets, comparisons, per-figure experiment drivers |

#![warn(missing_docs)]

pub use l2r_baselines as baselines;
pub use l2r_core as core;
pub use l2r_datagen as datagen;
pub use l2r_eval as eval;
pub use l2r_preference as preference;
pub use l2r_region_graph as region_graph;
pub use l2r_road_network as road_network;
pub use l2r_trajectory as trajectory;

/// The most commonly used items, re-exported flat for examples and quick
/// prototyping.
pub mod prelude {
    pub use l2r_baselines::{
        BaselineRouter, Dom, ExternalRouter, FastestRouter, ShortestRouter, Trip,
    };
    pub use l2r_core::{
        load_model, save_model, Engine, L2r, L2rConfig, ModelRegistry, QueryScratch,
        RegionCoverage, RouteResult, RouteStrategy, ScratchPool, SnapshotError,
    };
    pub use l2r_datagen::{
        generate_network, generate_workload, SyntheticNetworkConfig, WorkloadConfig,
    };
    pub use l2r_road_network::{
        fastest_path, path_similarity, path_similarity_jaccard, shortest_path, CostType, Path,
        RoadNetwork, RoadType, VertexId,
    };
    pub use l2r_trajectory::{MapMatcher, MatchedTrajectory};
}
