//! Smoke test: every `examples/` entry point must compile and exit 0 on its
//! built-in tiny configuration, so the documentation-facing examples cannot
//! silently rot.

use std::path::Path;
use std::process::Command;

/// Runs `cargo run --example <name>` in the workspace root and asserts a
/// zero exit status.
fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let output = Command::new(cargo)
        .args(["run", "--example", name])
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn map_matching_runs() {
    run_example("map_matching");
}

#[test]
fn baseline_comparison_runs() {
    run_example("baseline_comparison");
}

#[test]
fn sparse_transfer_runs() {
    run_example("sparse_transfer");
}

#[test]
fn snapshot_roundtrip_runs() {
    run_example("snapshot_roundtrip");
}
