//! Integration test of the evaluation harness: every experiment driver used
//! by the `reproduce` binary runs on a quick-scale dataset and produces
//! well-formed, report-able results.

use l2r_suite::eval::{
    build_dataset, build_test_queries, compare_methods, compare_with_external, fig6a, fig6b, fig9a,
    fig9b, offline_times, preference_recovery, report_accuracy, report_fig13, report_fig6a,
    report_fig6b, report_fig9a, report_fig9b, report_offline, report_runtime, report_table2,
    report_table4, table2, table4, DatasetSpec, Method, Scale,
};
use l2r_suite::prelude::*;

#[test]
fn all_experiments_run_on_a_quick_dataset() {
    let ds = build_dataset(DatasetSpec::d2(Scale::Quick));
    let net = &ds.synthetic.net;

    // Table II.
    let t2 = table2(
        net,
        &ds.workload.trajectories,
        ds.spec.distance_bounds_km.clone(),
    );
    assert_eq!(t2.total(), ds.workload.trajectories.len());
    assert!(report_table2(ds.spec.name, &t2).contains("Table II"));

    // Table IV.
    let t4 = table4(&ds.model, &ds.spec.area_bounds_km2);
    assert_eq!(
        t4.iter().map(|b| b.count).sum::<usize>(),
        ds.model.region_graph().num_regions()
    );
    assert!(report_table4(ds.spec.name, &t4).contains("Table IV"));

    // Figure 6.
    let f6a = fig6a(&ds.model, &ds.model.config().learn.clone());
    assert!(f6a.num_t_edges > 0);
    assert!(report_fig6a(ds.spec.name, &f6a).contains("Figure 6(a)"));
    let f6b = fig6b(&ds.model, 1000);
    assert_eq!(f6b.len(), 10);
    assert!(report_fig6b(ds.spec.name, &f6b).contains("Figure 6(b)"));

    // Figure 9.
    let f9a = fig9a(&ds.model, &ds.model.config().transfer);
    assert_eq!(f9a.len(), 4);
    assert!(report_fig9a(ds.spec.name, &f9a).contains("1X"));
    let f9b = fig9b(&ds.model, &ds.model.config().transfer, &[0.5, 0.7, 0.9]);
    assert_eq!(f9b.len(), 3);
    assert!(report_fig9b(ds.spec.name, &f9b).contains("amr"));

    // Figures 10-12.
    let queries = build_test_queries(net, &ds.model, &ds.test, 30);
    assert!(!queries.is_empty());
    let dom = Dom::train(net, &ds.train);
    let trip = Trip::train(net, &ds.train);
    let methods = vec![
        Method::L2r(&ds.model),
        Method::Baseline(&ShortestRouter),
        Method::Baseline(&FastestRouter),
        Method::Baseline(&dom),
        Method::Baseline(&trip),
    ];
    let results = compare_methods(net, &methods, &queries, &ds.spec.distance_bounds_km);
    assert_eq!(results.len(), 5);
    assert!(report_accuracy("fig10", &results, false, false).contains("L2R"));
    assert!(report_accuracy("fig11", &results, true, true).contains("InRegion"));
    assert!(report_runtime("fig12", &results, false).contains("L2R"));

    // Figure 13.
    let ext = ExternalRouter::with_defaults(net);
    let cmp = compare_with_external(net, &ds.model, &ext, &queries, &ds.spec.distance_bounds_km);
    assert!(report_fig13(ds.spec.name, &cmp).contains("External"));

    // Offline times + preference recovery.
    let offline = offline_times(&ds.model);
    assert_eq!(offline.len(), 5);
    assert!(report_offline(ds.spec.name, &offline).contains("clustering"));
    let rec = preference_recovery(&ds);
    assert!(rec.evaluated > 0);
}
