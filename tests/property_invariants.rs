//! Property-based tests (proptest) over the core data structures and
//! algorithmic invariants of the workspace.

use proptest::prelude::*;

use l2r_suite::preference::Preference;
use l2r_suite::prelude::*;
use l2r_suite::region_graph::{bottom_up_clustering, TrajectoryGraph};
use l2r_suite::road_network::{
    convex_hull, lowest_cost_path, path_similarity, path_similarity_jaccard, polygon_area, Point,
    RoadNetworkBuilder, RoadTypeSet,
};
use l2r_suite::trajectory::{DriverId, TrajectoryId};

/// A deterministic grid network used by several properties.
fn grid(n: u32) -> RoadNetwork {
    let mut b = RoadNetworkBuilder::new();
    for r in 0..n {
        for c in 0..n {
            b.add_vertex(Point::new(c as f64 * 500.0, r as f64 * 500.0));
        }
    }
    for r in 0..n {
        for c in 0..n {
            let v = VertexId(r * n + c);
            if c + 1 < n {
                b.add_two_way(v, VertexId(r * n + c + 1), RoadType::Secondary)
                    .unwrap();
            }
            if r + 1 < n {
                b.add_two_way(v, VertexId((r + 1) * n + c), RoadType::Secondary)
                    .unwrap();
            }
        }
    }
    b.build()
}

/// A random simple path on the grid as a walk that never immediately
/// backtracks (may revisit vertices, which similarity handles fine).
fn grid_walk(n: u32) -> impl Strategy<Value = Vec<VertexId>> {
    (0..n * n, proptest::collection::vec(0..4u8, 1..20)).prop_map(move |(start, moves)| {
        let mut walk = vec![VertexId(start)];
        let mut cur = start;
        for m in moves {
            let r = cur / n;
            let c = cur % n;
            let next = match m {
                0 if c + 1 < n => cur + 1,
                1 if c > 0 => cur - 1,
                2 if r + 1 < n => cur + n,
                3 if r > 0 => cur - n,
                _ => continue,
            };
            if walk.len() >= 2 && walk[walk.len() - 2] == VertexId(next) {
                continue; // no immediate backtrack (keeps the path drivable and simple enough)
            }
            walk.push(VertexId(next));
            cur = next;
        }
        walk
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Path similarity (both equations) is bounded, maximal for identical
    /// paths and the Jaccard form never exceeds the Eq. 1 form.
    #[test]
    fn path_similarity_bounds(walk_a in grid_walk(6), walk_b in grid_walk(6)) {
        let net = grid(6);
        let a = Path::new(walk_a).unwrap();
        let b = Path::new(walk_b).unwrap();
        let eq1 = path_similarity(&net, &a, &b);
        let eq4 = path_similarity_jaccard(&net, &a, &b);
        prop_assert!((0.0..=1.0).contains(&eq1));
        prop_assert!((0.0..=1.0).contains(&eq4));
        prop_assert!(eq4 <= eq1 + 1e-9);
        prop_assert!((path_similarity(&net, &a, &a) - 1.0).abs() < 1e-9);
    }

    /// Dijkstra is optimal: no observed walk between the same endpoints can
    /// be cheaper than the computed lowest-cost path, for any cost type.
    #[test]
    fn dijkstra_paths_are_never_beaten_by_walks(walk in grid_walk(6)) {
        let net = grid(6);
        let path = Path::new(walk).unwrap();
        prop_assume!(!path.is_trivial());
        let (s, d) = (path.source(), path.destination());
        for cost in [CostType::Distance, CostType::TravelTime, CostType::Fuel] {
            let best = lowest_cost_path(&net, s, d, cost).unwrap();
            let best_cost = best.cost(&net, cost).unwrap();
            let walk_cost = path.cost(&net, cost).unwrap();
            prop_assert!(best_cost <= walk_cost + 1e-6);
        }
    }

    /// Road-type sets behave like sets: Jaccard is within [0, 1], the union
    /// contains both operands and the intersection is contained in both.
    #[test]
    fn road_type_set_algebra(bits_a in 0u8..64, bits_b in 0u8..64) {
        let set_of = |bits: u8| {
            let mut s = RoadTypeSet::empty();
            for rt in RoadType::ALL {
                if bits & (1 << rt.index()) != 0 {
                    s.insert(rt);
                }
            }
            s
        };
        let a = set_of(bits_a);
        let b = set_of(bits_b);
        let j = a.jaccard(b);
        prop_assert!((0.0..=1.0).contains(&j));
        let u = a.union(b);
        let i = a.intersection(b);
        for rt in RoadType::ALL {
            if a.contains(rt) || b.contains(rt) {
                prop_assert!(u.contains(rt));
            }
            if i.contains(rt) {
                prop_assert!(a.contains(rt) && b.contains(rt));
            }
        }
        prop_assert!((a.jaccard(a) - 1.0).abs() < 1e-12);
    }

    /// Preference feature rows decode back to the preference that produced
    /// them (single-road-type slaves round-trip exactly).
    #[test]
    fn preference_feature_row_roundtrip(master_idx in 0usize..3, slave_idx in 0usize..7) {
        let master = CostType::from_index(master_idx).unwrap();
        let slave = if slave_idx < 6 {
            Some(l2r_suite::road_network::RoadTypeSet::single(RoadType::from_index(slave_idx).unwrap()))
        } else {
            None
        };
        let p = Preference { master, slave };
        let decoded = Preference::from_feature_row(&p.to_feature_row(), 0.5).unwrap();
        prop_assert_eq!(decoded, p);
    }

    /// Convex hulls have non-negative area that never exceeds the bounding
    /// box area of the input points.
    #[test]
    fn convex_hull_area_is_bounded(points in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 0..40)) {
        let pts: Vec<Point> = points.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let hull = convex_hull(&pts);
        let area = polygon_area(&hull);
        prop_assert!(area >= 0.0);
        if !pts.is_empty() {
            let bb = l2r_suite::road_network::BoundingBox::from_points(pts.iter());
            prop_assert!(area <= bb.width() * bb.height() + 1e-6);
        }
    }

    /// Clustering is a partition of the traversed vertices and preserves the
    /// total vertex popularity, for arbitrary small trajectory sets.
    #[test]
    fn clustering_partitions_traversed_vertices(walks in proptest::collection::vec(grid_walk(5), 1..12)) {
        let net = grid(5);
        let trajectories: Vec<MatchedTrajectory> = walks
            .into_iter()
            .enumerate()
            .filter_map(|(i, w)| {
                let p = Path::new(w).ok()?;
                if p.is_trivial() { return None; }
                Some(MatchedTrajectory::new(TrajectoryId(i as u32), DriverId(0), p, 0.0))
            })
            .collect();
        prop_assume!(!trajectories.is_empty());
        let tg = TrajectoryGraph::build(&net, &trajectories);
        let clusters = bottom_up_clustering(&tg);
        let mut seen = std::collections::HashSet::new();
        let mut total_pop = 0.0;
        for c in &clusters {
            for v in &c.vertices {
                prop_assert!(seen.insert(*v), "vertex {v:?} appears in two clusters");
            }
            total_pop += c.popularity;
        }
        prop_assert_eq!(seen.len(), tg.num_vertices());
        let expected: f64 = tg.vertices().map(|v| tg.vertex_popularity(v)).sum();
        prop_assert!((total_pop - expected).abs() < 1e-6);
    }
}
