//! Equivalence property tests for the owned serving engine: an
//! [`l2r_core::Engine`] must answer **bit-identically** to the free `route`
//! function — same paths, same strategies, same `None`s — across a swept
//! grid of vertex pairs on both quick-scale experiment datasets, and
//! `route_many` (parallel, one scratch per worker) must reproduce serial
//! routing exactly.

use l2r_core::QueryScratch;
use l2r_eval::{build_dataset, DatasetSpec, Scale};
use l2r_road_network::VertexId;

fn sweep_pairs(num_vertices: u32, i_step: usize, j_step: usize) -> Vec<(VertexId, VertexId)> {
    let mut pairs = Vec::new();
    for i in (0..num_vertices).step_by(i_step) {
        for j in (1..num_vertices).step_by(j_step) {
            if i != j {
                pairs.push((VertexId(i), VertexId(j)));
            }
        }
    }
    pairs
}

fn assert_engine_matches_free(spec: DatasetSpec) {
    let name = spec.name;
    let ds = build_dataset(spec);
    let net = &ds.synthetic.net;
    let rg = ds.model.region_graph();
    let engine = ds.model.prepare();
    let mut scratch = QueryScratch::new();

    let pairs = sweep_pairs(net.num_vertices() as u32, 7, 13);
    assert!(pairs.len() > 100, "sweep should cover many pairs on {name}");
    let mut answered = 0usize;
    for (s, d) in &pairs {
        let free = l2r_core::route(net, rg, *s, *d);
        let fast = engine.route(&mut scratch, *s, *d);
        assert_eq!(free, fast, "{name}: query {s:?} -> {d:?}");
        if free.is_some() {
            answered += 1;
        }
    }
    assert!(
        answered * 2 > pairs.len(),
        "{name}: most swept queries should be answerable ({answered}/{})",
        pairs.len()
    );
}

#[test]
fn engine_is_bit_identical_to_free_route_on_d1() {
    assert_engine_matches_free(DatasetSpec::d1(Scale::Quick));
}

#[test]
fn engine_is_bit_identical_to_free_route_on_d2() {
    assert_engine_matches_free(DatasetSpec::d2(Scale::Quick));
}

#[test]
fn route_many_is_deterministic_and_matches_serial() {
    let ds = build_dataset(DatasetSpec::d1(Scale::Quick));
    let engine = ds.model.prepare();
    let queries = sweep_pairs(ds.synthetic.net.num_vertices() as u32, 11, 17);
    assert!(queries.len() > 50);

    // Serial reference: one scratch, in query order.
    let mut scratch = QueryScratch::new();
    let serial: Vec<_> = queries
        .iter()
        .map(|(s, d)| engine.route(&mut scratch, *s, *d))
        .collect();

    // Parallel batches must reproduce the serial answers in order, run after
    // run (worker scheduling must never leak into results).
    for _ in 0..2 {
        let batch = engine.route_many(&queries);
        assert_eq!(batch, serial);
    }
}
