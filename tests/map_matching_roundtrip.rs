//! Integration test: the full GPS round trip — drive preference-constrained
//! paths, simulate noisy GPS traces at the two sampling rates of the paper,
//! map-match them back and fit L2R on the *matched* trajectories.

use rand::rngs::StdRng;
use rand::SeedableRng;

use l2r_suite::prelude::*;
use l2r_suite::trajectory::{
    sampling_summary, simulate_gps_trace, DriverId, GpsSimulationConfig, Trajectory, TrajectoryId,
};

fn simulate_workload_gps(
    city: &l2r_suite::datagen::SyntheticNetwork,
    trajectories: &[MatchedTrajectory],
    config: &GpsSimulationConfig,
    seed: u64,
) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    trajectories
        .iter()
        .enumerate()
        .filter_map(|(i, t)| {
            simulate_gps_trace(
                &city.net,
                &t.path,
                TrajectoryId(i as u32),
                DriverId(t.driver.0),
                t.departure_time_s,
                config,
                &mut rng,
            )
        })
        .collect()
}

#[test]
fn high_frequency_roundtrip_recovers_most_paths() {
    let city = generate_network(&SyntheticNetworkConfig::tiny());
    let workload = generate_workload(&city, &WorkloadConfig::tiny(60));
    let traces = simulate_workload_gps(
        &city,
        &workload.trajectories,
        &GpsSimulationConfig::high_frequency(),
        11,
    );
    assert!(!traces.is_empty());
    let summary = sampling_summary(&traces);
    assert!(
        summary.mean_interval_s < 2.0,
        "high-frequency traces are ~1 Hz"
    );

    let matcher = MapMatcher::with_defaults(&city.net);
    let (matched, dropped) = matcher.match_all(&traces);
    assert!(
        dropped * 5 <= traces.len(),
        "most traces must be matchable (dropped {dropped})"
    );

    // Compare each matched path with the originally driven path (pairing by
    // trajectory id, since some traces may have been dropped).
    let mut total = 0.0;
    for m in &matched {
        let original = &workload.trajectories[m.id.0 as usize];
        total += path_similarity(&city.net, &original.path, &m.path);
    }
    let mean = total / matched.len() as f64;
    assert!(mean > 0.8, "mean recovery {mean:.2}");
}

#[test]
fn low_frequency_traces_still_support_fitting_l2r() {
    let city = generate_network(&SyntheticNetworkConfig::tiny());
    let workload = generate_workload(&city, &WorkloadConfig::tiny(80));
    let traces = simulate_workload_gps(
        &city,
        &workload.trajectories,
        &GpsSimulationConfig::low_frequency(),
        13,
    );
    let matcher = MapMatcher::with_defaults(&city.net);
    let (matched, _) = matcher.match_all(&traces);
    assert!(matched.len() >= traces.len() / 2);

    // The L2R pipeline runs end to end on map-matched (rather than
    // generator-exact) trajectories.
    let model = L2r::fit(&city.net, &matched, L2rConfig::fast()).expect("fit on matched data");
    assert!(model.stats().num_regions > 0);
    let q = &matched[0];
    let route = model.route(q.source(), q.destination()).expect("routable");
    route.path.validate(&city.net).expect("valid path");
}
