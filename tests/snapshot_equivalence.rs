//! The snapshot acceptance sweep: fit → save → load →
//! [`l2r_core::Engine`] → route must be **bit-identical**
//! to routing on the never-serialized model, across the same swept grid of
//! vertex pairs used by `engine_equivalence.rs`, on both quick-scale
//! experiment datasets.

use l2r_core::{decode_model, encode_model, QueryScratch};
use l2r_eval::{build_dataset, DatasetSpec, Scale};
use l2r_road_network::VertexId;

fn sweep_pairs(num_vertices: u32, i_step: usize, j_step: usize) -> Vec<(VertexId, VertexId)> {
    let mut pairs = Vec::new();
    for i in (0..num_vertices).step_by(i_step) {
        for j in (1..num_vertices).step_by(j_step) {
            if i != j {
                pairs.push((VertexId(i), VertexId(j)));
            }
        }
    }
    pairs
}

fn assert_loaded_model_serves_identically(spec: DatasetSpec) {
    let name = spec.name;
    let ds = build_dataset(spec);

    // Fit → encode → decode, all in memory (the file layer is covered by
    // crates/core/tests/snapshot_robustness.rs).
    let bytes = encode_model(&ds.model);
    let loaded = decode_model(&bytes).expect("snapshot decodes");
    // `into_engine` moves the loaded model into the owned engine — the
    // serving process never needs a second copy.
    let engine = loaded.into_engine();
    let mut scratch = QueryScratch::new();

    let net = &ds.synthetic.net;
    let pairs = sweep_pairs(net.num_vertices() as u32, 7, 13);
    assert!(pairs.len() > 100, "sweep should cover many pairs on {name}");
    let mut answered = 0usize;
    for (s, d) in &pairs {
        let original = ds.model.route(*s, *d);
        let from_snapshot = engine.route(&mut scratch, *s, *d);
        assert_eq!(original, from_snapshot, "{name}: query {s:?} -> {d:?}");
        if original.is_some() {
            answered += 1;
        }
    }
    assert!(
        answered * 2 > pairs.len(),
        "{name}: most swept queries should be answerable ({answered}/{})",
        pairs.len()
    );
}

#[test]
fn snapshot_roundtrip_serves_bit_identically_on_d1() {
    assert_loaded_model_serves_identically(DatasetSpec::d1(Scale::Quick));
}

#[test]
fn snapshot_roundtrip_serves_bit_identically_on_d2() {
    assert_loaded_model_serves_identically(DatasetSpec::d2(Scale::Quick));
}
