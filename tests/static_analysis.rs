//! Tier-1 static-analysis gate: `cargo test -q` fails if any workspace file
//! violates an `l2r-analyze` rule without an explicit waiver.
//!
//! This is the same engine as `cargo run -p l2r-analyze -- check` and the
//! CI `analyze` job — a freshly introduced `partial_cmp` comparator, a
//! SAFETY-less `unsafe` block, or an unjustified atomic ordering fails the
//! ordinary test run, not just a lint job someone has to remember exists.

use l2r_analyze::{report, run, Config};

#[test]
fn workspace_passes_static_analysis() {
    let config = Config::for_root(env!("CARGO_MANIFEST_DIR"));
    let report_data = run(&config).expect("workspace scan");
    assert!(
        report_data.files_scanned > 50,
        "suspiciously small scan ({} files) — wrong root?",
        report_data.files_scanned
    );
    assert_eq!(
        report_data.rules.len(),
        6,
        "rule set changed; update this gate and the README table"
    );
    assert!(
        report_data.findings.is_empty(),
        "static-analysis violations:\n{}",
        report::human(&report_data)
    );
}

#[test]
fn waivers_stay_enumerated_not_open_ended() {
    // Waivers are the audit trail, not a loophole: this pins their totals
    // so adding one is a conscious, reviewed act (update the counts here
    // and say why in the allow comment).
    let config = Config::for_root(env!("CARGO_MANIFEST_DIR"));
    let report_data = run(&config).expect("workspace scan");
    let inline = report_data
        .waived
        .iter()
        .filter(|f| f.allowed == Some(l2r_analyze::Waiver::Inline))
        .count();
    let frozen = report_data.waived.len() - inline;
    assert!(
        inline <= 25,
        "inline allow count grew to {inline}; review the new waivers"
    );
    assert!(
        frozen <= 10,
        "frozen-file findings grew to {frozen}; legacy.rs should only shrink"
    );
}
