//! End-to-end integration tests: synthetic city -> workload -> L2R fit ->
//! routing, crossing every crate of the workspace.

use l2r_suite::prelude::*;
use l2r_suite::region_graph::RegionEdgeKind;

fn build_model(
    n_traj: usize,
    seed: u64,
) -> (
    l2r_suite::datagen::SyntheticNetwork,
    l2r_suite::datagen::Workload,
    L2r,
) {
    let city = generate_network(&SyntheticNetworkConfig::tiny());
    let mut cfg = WorkloadConfig::tiny(n_traj);
    cfg.seed = seed;
    let workload = generate_workload(&city, &cfg);
    let (train, _) = workload.temporal_split(0.8);
    let model = L2r::fit(&city.net, &train, L2rConfig::fast()).expect("fit succeeds");
    (city, workload, model)
}

#[test]
fn fitted_model_covers_the_training_corridors() {
    let (city, workload, model) = build_model(300, 1);
    let rg = model.region_graph();
    assert!(rg.num_regions() > 1);
    assert!(
        rg.is_connected(),
        "B-edges must make the region graph connected"
    );
    // Every region vertex is a real network vertex.
    for r in rg.regions() {
        for v in &r.vertices {
            assert!(v.idx() < city.net.num_vertices());
        }
    }
    // T-edges carry observed paths; B-edges got paths from Step 3 (or none if
    // unreachable, which must be rare).
    let mut t_with_paths = 0;
    for e in rg.edges() {
        match e.kind {
            RegionEdgeKind::TEdge => {
                if e.has_paths() {
                    t_with_paths += 1;
                }
            }
            RegionEdgeKind::BEdge => {}
        }
    }
    assert!(t_with_paths > 0);
    assert!(!workload.trajectories.is_empty());
}

#[test]
fn routing_answers_every_held_out_query_with_a_valid_path() {
    let (city, workload, model) = build_model(300, 2);
    let (_, test) = workload.temporal_split(0.8);
    let mut answered = 0;
    for t in test.iter().take(50) {
        let (s, d) = (t.source(), t.destination());
        let Some(route) = model.route(s, d) else {
            continue;
        };
        route
            .path
            .validate(&city.net)
            .expect("routes must be drivable");
        assert_eq!(route.path.source(), s);
        assert_eq!(route.path.destination(), d);
        answered += 1;
    }
    assert!(
        answered as f64 >= test.len().min(50) as f64 * 0.9,
        "answered {answered}"
    );
}

#[test]
fn l2r_beats_or_matches_shortest_on_aggregate_accuracy() {
    let (city, workload, model) = build_model(350, 3);
    let (_, test) = workload.temporal_split(0.8);
    let mut l2r_sum = 0.0;
    let mut shortest_sum = 0.0;
    let mut fastest_sum = 0.0;
    let mut n = 0;
    for t in test.iter().take(80) {
        let (s, d) = (t.source(), t.destination());
        let (Some(l2r), Some(short), Some(fast)) = (
            model.route(s, d),
            shortest_path(&city.net, s, d),
            fastest_path(&city.net, s, d),
        ) else {
            continue;
        };
        l2r_sum += path_similarity(&city.net, &t.path, &l2r.path);
        shortest_sum += path_similarity(&city.net, &t.path, &short);
        fastest_sum += path_similarity(&city.net, &t.path, &fast);
        n += 1;
    }
    assert!(n >= 20, "need enough comparable queries, got {n}");
    // The headline result of the paper, reproduced in aggregate: L2R is at
    // least competitive with cost-centric routing on driver similarity.
    assert!(
        l2r_sum >= shortest_sum * 0.95,
        "L2R {l2r_sum:.2} vs Shortest {shortest_sum:.2}"
    );
    assert!(
        l2r_sum >= fastest_sum * 0.9,
        "L2R {l2r_sum:.2} vs Fastest {fastest_sum:.2}"
    );
}

#[test]
fn model_is_deterministic_for_a_fixed_seed() {
    let (_, _, model_a) = build_model(200, 7);
    let (_, _, model_b) = build_model(200, 7);
    assert_eq!(
        model_a.region_graph().num_regions(),
        model_b.region_graph().num_regions()
    );
    assert_eq!(
        model_a.region_graph().num_edges(),
        model_b.region_graph().num_edges()
    );
    assert_eq!(
        model_a.learned_preferences().len(),
        model_b.learned_preferences().len()
    );
}

#[test]
fn personalized_baselines_train_and_route_on_the_same_workload() {
    let (city, workload, _) = build_model(250, 9);
    let (train, test) = workload.temporal_split(0.8);
    let dom = Dom::train(&city.net, &train);
    let trip = Trip::train(&city.net, &train);
    let ext = ExternalRouter::with_defaults(&city.net);
    let routers: Vec<&dyn BaselineRouter> =
        vec![&ShortestRouter, &FastestRouter, &dom, &trip, &ext];
    for t in test.iter().take(10) {
        for r in &routers {
            let p = r
                .route(&city.net, t.source(), t.destination(), t.driver)
                .unwrap_or_else(|| panic!("{} failed to route", r.name()));
            p.validate(&city.net)
                .expect("baseline paths must be drivable");
        }
    }
}
